package submodel

import (
	"testing"

	"p4assert/internal/model"
	"p4assert/internal/p4"
	"p4assert/internal/sym"
	"p4assert/internal/translate"
	"p4assert/internal/whippersnapper"
)

func translateWS(t *testing.T, cfg whippersnapper.Config) *model.Program {
	t.Helper()
	src := whippersnapper.Generate(cfg)
	prog, err := p4.Parse("ws.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Check(); err != nil {
		t.Fatal(err)
	}
	m, err := translate.Translate(prog, translate.Options{Rules: whippersnapper.GenerateRules(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSplitCountForkTable(t *testing.T) {
	// No parser branch; the first table has 3 actions → 3 submodels.
	m := translateWS(t, whippersnapper.Config{Tables: 3})
	subs := Split(m)
	if len(subs) != 3 {
		t.Fatalf("submodels = %d, want 3", len(subs))
	}
}

func TestSplitCountRuleCascade(t *testing.T) {
	// With R rules the first table is an R-arm cascade plus a default:
	// R+1 submodels (the growth behind Fig. 10(c)'s parallel overhead).
	m := translateWS(t, whippersnapper.Config{Tables: 2, RulesPerTable: 5})
	subs := Split(m)
	if len(subs) != 6 {
		t.Fatalf("submodels = %d, want 6", len(subs))
	}
}

func TestSplitParserAndTable(t *testing.T) {
	// A parser select (2 outcomes) times the table decision.
	src := `
header h_t { bit<8> k; }
struct hs { h_t h; }
struct ms { bit<1> u; }
parser P(packet_in pkt, out hs hdr, inout ms meta,
         inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.h);
        transition select(hdr.h.k) {
            1: s1;
            default: accept;
        }
    }
    state s1 { transition accept; }
}
control I(inout hs hdr, inout ms meta,
          inout standard_metadata_t standard_metadata) {
    action a() { }
    action b() { }
    table t { actions = { a; b; } default_action = a; }
    apply { t.apply(); }
}
control D(packet_out pkt, in hs hdr) { apply { } }
V1Switch(P, I, D) main;
`
	prog, err := p4.Parse("pt.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Check(); err != nil {
		t.Fatal(err)
	}
	m, err := translate.Translate(prog, translate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	subs := Split(m)
	// 2 parser outcomes × 2 table actions.
	if len(subs) != 4 {
		t.Fatalf("submodels = %d, want 4", len(subs))
	}
}

func TestNoDecisionPoints(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("x", 8, false, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.Assign{LHS: "x", RHS: &model.Const{Width: 8, Val: 1}},
	}})
	p.Entry = []string{"main"}
	subs := Split(p)
	if len(subs) != 1 || subs[0] != p {
		t.Fatal("straight-line model should come back unsplit")
	}
}

// TestRunCoverageEquivalence: the union of submodel paths equals the
// sequential exploration, and the heaviest submodel does a fraction of the
// work (Table 2, column 10).
func TestRunCoverageEquivalence(t *testing.T) {
	m := translateWS(t, whippersnapper.Config{Tables: 3, Assertions: 2})
	seq, err := sym.Execute(m, sym.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(m, sym.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Agg.Metrics.Paths != seq.Metrics.Paths {
		t.Fatalf("paths: parallel %d vs sequential %d", par.Agg.Metrics.Paths, seq.Metrics.Paths)
	}
	if len(par.PerModel) != 3 {
		t.Fatalf("expected 3 submodels, got %d", len(par.PerModel))
	}
	if par.WorstInstructions >= seq.Metrics.Instructions {
		t.Fatalf("worst submodel (%d) should be lighter than the whole (%d)",
			par.WorstInstructions, seq.Metrics.Instructions)
	}
}

func TestRunMergesViolations(t *testing.T) {
	// A model whose bug lives in one table branch: the merged result must
	// carry it no matter which submodel finds it.
	p := model.NewProgram()
	p.AddGlobal("k", 8, true, 0)
	p.AddGlobal("sel", 8, false, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.Fork{Selector: "sel", Labels: []string{"good", "bad"}, Branches: [][]model.Stmt{
			{},
			{&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpNe,
				X: &model.Ref{Name: "k"}, Y: &model.Const{Width: 8, Val: 9}}}},
		}},
	}})
	p.Entry = []string{"main"}
	p.Asserts = []*model.AssertInfo{{ID: 0, Source: "k != 9"}}
	res, err := Run(p, sym.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Agg.Violations) != 1 || res.Agg.Violations[0].Model["k"] != 9 {
		t.Fatalf("merged violations wrong: %+v", res.Agg.Violations)
	}
}

func TestInfeasibleSubmodelContributesNothing(t *testing.T) {
	// Splitting an if-cascade produces a default submodel whose assumes
	// may be unsatisfiable; it must simply contribute zero paths.
	p := model.NewProgram()
	p.AddGlobal("b", 1, true, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.If{
			Cond: &model.Ref{Name: "b"},
			Then: []model.Stmt{},
			Else: []model.Stmt{&model.If{
				Cond: &model.Un{Op: model.OpNot, X: &model.Ref{Name: "b"}},
				Then: []model.Stmt{},
				Else: []model.Stmt{}, // unreachable default
			}},
		},
	}})
	p.Entry = []string{"main"}
	res, err := Run(p, sym.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Metrics.Paths != 2 {
		t.Fatalf("paths = %d, want 2", res.Agg.Metrics.Paths)
	}
}
