// Package sat implements a CDCL (conflict-driven clause learning) boolean
// satisfiability solver: two-watched-literal propagation, 1-UIP conflict
// analysis with clause learning, VSIDS-style activity ordering, phase
// saving and Luby restarts.
//
// The solver is incremental in the MiniSat style: SolveWith/SolveAssuming
// decide satisfiability under a set of assumption literals enqueued as
// successive decisions, clauses may be added between calls, and learned
// clauses persist across calls (they are derived from the clause database
// alone, so they stay valid whatever the next call assumes). Models are
// captured on SAT and survive backtracking, so Value works after the
// trail has been unwound.
//
// It plays the role STP/Z3 play inside KLEE for the paper: the backend that
// decides path feasibility and produces counterexample models after the
// bitvector layer (internal/bitblast) has reduced formulas to CNF.
package sat

import "sync/atomic"

// Lit is a literal: variable index v (0-based) encoded as 2v for the
// positive polarity and 2v+1 for the negative.
type Lit int32

// MkLit builds a literal from a variable index and polarity.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToL(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

type clause struct {
	lits    []Lit
	learned bool
	act     float64
}

type watcher struct {
	c       *clause
	blocker Lit // cached literal; if true, clause is satisfied
}

// Solver holds all solver state. The zero value is not usable; call New.
type Solver struct {
	clauses  []*clause
	learned  []*clause
	watches  [][]watcher // indexed by literal
	assign   []lbool     // indexed by variable
	level    []int32     // decision level per variable
	reason   []*clause   // antecedent clause per variable
	trail    []Lit
	trailLim []int // trail index per decision level
	qhead    int

	activity  []float64
	varInc    float64
	order     *varHeap
	phase     []bool // saved phases
	clauseInc float64

	unsat     bool
	conflicts int64
	decisions int64
	propags   int64
	learned64 int64 // clauses learned over the solver's lifetime

	model []lbool     // assignment captured at the last SAT answer
	stop  atomic.Bool // cooperative abort flag, checked in the search loop

	seen    []bool // scratch for conflict analysis
	MaxConf int64  // optional conflict budget; 0 means unlimited
}

// Outcome is the three-valued result of an incremental solve: Unknown is
// returned when the conflict budget ran out or Stop aborted the search.
type Outcome int8

const (
	Unknown Outcome = iota
	Sat
	Unsat
)

func (o Outcome) String() string {
	switch o {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, clauseInc: 1}
	s.order = &varHeap{s: s}
	return s
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// NumClauses returns the number of stored problem clauses. Unit clauses
// are enqueued directly rather than stored, and learned clauses are
// tracked separately; neither is counted here.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Stats returns (decisions, propagations, conflicts) counters.
func (s *Solver) Stats() (int64, int64, int64) { return s.decisions, s.propags, s.conflicts }

// Learned returns the number of clauses learned over the solver's lifetime
// (including those since removed by database reduction).
func (s *Solver) Learned() int64 { return s.learned64 }

// Stop asks a running solve to abandon search; it returns Unknown. The
// flag is sticky — the owner clears it with ResetStop before the next
// solve. Safe to call from another goroutine (the portfolio racer's
// cancellation path).
func (s *Solver) Stop() { s.stop.Store(true) }

// ResetStop re-arms a solver whose previous search was cancelled.
func (s *Solver) ResetStop() { s.stop.Store(false) }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

func (s *Solver) litValue(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// AddClause adds a clause over the given literals. Returns false if the
// formula became trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	if len(s.trailLim) != 0 {
		// Solves always unwind to level 0 before returning, so this only
		// fires on misuse from inside the search itself.
		panic("sat: AddClause mid-search")
	}
	// Deduplicate and drop falsified/tautological literals.
	out := lits[:0:0]
	for _, l := range lits {
		switch s.litValue(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		dup, taut := false, false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.unsat = true
			return false
		}
		if s.propagate() != nil {
			s.unsat = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.litValue(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	s.assign[v] = boolToL(!l.Neg())
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.phase[v] = !l.Neg()
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation; returns the conflicting clause, if any.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true
		s.qhead++
		s.propags++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if confl != nil {
				kept = append(kept, ws[i:]...)
				break
			}
			if s.litValue(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Ensure the false literal (p.Not()) is at position 1.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue // watcher moved; drop from this list
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.litValue(first) == lFalse {
				confl = c
				s.qhead = len(s.trail)
			} else if !s.enqueue(first, c) {
				confl = c
				s.qhead = len(s.trail)
			}
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.clauseInc
	if c.act > 1e20 {
		for _, lc := range s.learned {
			lc.act *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

// analyze performs 1-UIP conflict analysis, returning the learned clause
// (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal slot of the reason
		}
		for j := start; j < len(confl.lits); j++ {
			q := confl.lits[j]
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next literal to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Not()
			break
		}
		confl = s.reason[v]
	}

	// Compute backjump level: the max level among the non-asserting lits.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].Var()])
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	return learnt, bt
}

func (s *Solver) record(learnt []Lit) {
	s.learned64++
	if len(learnt) == 1 {
		s.enqueue(learnt[0], nil)
		return
	}
	c := &clause{lits: learnt, learned: true, act: s.clauseInc}
	s.learned = append(s.learned, c)
	s.watch(c)
	s.enqueue(learnt[0], c)
}

// reduceDB removes the less active half of the learned clauses.
func (s *Solver) reduceDB() {
	if len(s.learned) < 4 {
		return
	}
	// Partial selection: keep binary clauses and the more active half.
	lim := medianAct(s.learned)
	kept := s.learned[:0]
	for _, c := range s.learned {
		if len(c.lits) <= 2 || c.act >= lim || s.locked(c) {
			kept = append(kept, c)
		} else {
			s.unwatch(c)
		}
	}
	s.learned = kept
}

func (s *Solver) locked(c *clause) bool {
	v := c.lits[0].Var()
	return s.reason[v] == c && s.assign[v] != lUndef
}

func (s *Solver) unwatch(c *clause) {
	for _, wl := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[wl]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func medianAct(cs []*clause) float64 {
	var sum float64
	for _, c := range cs {
		sum += c.act
	}
	return sum / float64(len(cs))
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i >= 1<<uint(k-1) && i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// Solve decides satisfiability of the accumulated clauses. It returns true
// for SAT (a model is then available via Value) and false for UNSAT. If a
// conflict budget was set and exhausted, Solve returns false with Okay()
// still true.
func (s *Solver) Solve() bool { return s.SolveWith(nil) == Sat }

// SolveAssuming decides satisfiability under the given assumption
// literals. It returns true for SAT; false means the clauses are
// unsatisfiable together with the assumptions (Okay() distinguishes a
// global contradiction from an assumption failure). Learned clauses are
// retained across calls, and more clauses may be added between calls.
func (s *Solver) SolveAssuming(assumps ...Lit) bool { return s.SolveWith(assumps) == Sat }

// SolveWith is the full-featured incremental entry point: it decides
// satisfiability under assumps (each enqueued as a decision at its own
// level, MiniSat-style) and reports Unknown when the conflict budget ran
// out or Stop cancelled the search. The trail is always unwound to level 0
// before returning; on Sat the model is captured first and stays readable
// via Value.
func (s *Solver) SolveWith(assumps []Lit) Outcome {
	if s.unsat {
		return Unsat
	}
	s.cancelUntil(0)
	if confl := s.propagate(); confl != nil {
		s.unsat = true
		return Unsat
	}
	restart := int64(1)
	for {
		budget := 100 * luby(restart)
		res := s.search(budget, assumps)
		switch res {
		case lTrue:
			// Capture the model before unwinding: the caller reads it
			// through Value after the trail is gone.
			s.model = append(s.model[:0], s.assign...)
			s.cancelUntil(0)
			return Sat
		case lFalse:
			// Either a global level-0 contradiction (s.unsat was set in
			// search) or a conflict with the assumptions; both are UNSAT
			// for this call.
			s.cancelUntil(0)
			return Unsat
		}
		s.cancelUntil(0)
		if s.stop.Load() || (s.MaxConf > 0 && s.conflicts >= s.MaxConf) {
			return Unknown
		}
		restart++
		if restart%8 == 0 {
			s.reduceDB()
		}
	}
}

func (s *Solver) search(budget int64, assumps []Lit) lbool {
	for n := int64(0); ; {
		if s.stop.Load() {
			return lUndef
		}
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			n++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return lFalse
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			s.record(learnt)
			s.varInc *= 1.0 / 0.95
			s.clauseInc *= 1.0 / 0.999
			if n >= budget || (s.MaxConf > 0 && s.conflicts >= s.MaxConf) {
				return lUndef
			}
			continue
		}
		// Re-establish any assumption not yet on the trail: one decision
		// level per assumption (dummy levels for already-true ones keep
		// the level/index alignment). A falsified assumption means UNSAT
		// under the assumptions, not a global contradiction.
		if s.decisionLevel() < len(assumps) {
			p := assumps[s.decisionLevel()]
			switch s.litValue(p) {
			case lTrue:
				s.newDecisionLevel()
			case lFalse:
				return lFalse
			default:
				s.newDecisionLevel()
				s.enqueue(p, nil)
			}
			continue
		}
		// Pick a branching variable.
		v := s.pickBranch()
		if v < 0 {
			return lTrue // all assigned: model found
		}
		s.decisions++
		s.newDecisionLevel()
		s.enqueue(MkLit(v, !s.phase[v]), nil)
	}
}

func (s *Solver) pickBranch() int {
	for {
		v := s.order.pop()
		if v < 0 {
			return -1
		}
		if s.assign[v] == lUndef {
			return v
		}
	}
}

// Value returns the assignment of variable v in the most recently captured
// model (the last solve that answered SAT). Variables allocated after that
// solve read as false.
func (s *Solver) Value(v int) bool { return v < len(s.model) && s.model[v] == lTrue }

// Okay reports whether no top-level contradiction has been derived.
func (s *Solver) Okay() bool { return !s.unsat }
