package sat

// varHeap is a max-heap over variable activities used for VSIDS branching.
// It keeps an index per variable so activities can be updated in place.
type varHeap struct {
	s    *Solver
	data []int
	pos  []int // variable -> heap index, -1 if absent
}

func (h *varHeap) less(a, b int) bool {
	return h.s.activity[h.data[a]] > h.s.activity[h.data[b]]
}

func (h *varHeap) swap(a, b int) {
	h.data[a], h.data[b] = h.data[b], h.data[a]
	h.pos[h.data[a]] = a
	h.pos[h.data[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) push(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.data = append(h.data, v)
	h.pos[v] = len(h.data) - 1
	h.up(len(h.data) - 1)
}

func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) pop() int {
	if len(h.data) == 0 {
		return -1
	}
	v := h.data[0]
	last := len(h.data) - 1
	h.swap(0, last)
	h.data = h.data[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if v < len(h.pos) && h.pos[v] >= 0 {
		h.up(h.pos[v])
	}
}
