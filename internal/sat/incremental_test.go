package sat

import (
	"math/rand"
	"testing"
)

func TestSolveAssumingBasic(t *testing.T) {
	s := New()
	x, y := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(x, false), MkLit(y, false)) // x ∨ y

	if !s.SolveAssuming(MkLit(x, true)) { // assume ¬x
		t.Fatal("x∨y under ¬x should be SAT")
	}
	if s.Value(x) || !s.Value(y) {
		t.Fatal("model under ¬x must set y")
	}
	if s.SolveAssuming(MkLit(x, true), MkLit(y, true)) {
		t.Fatal("x∨y under ¬x,¬y should be UNSAT")
	}
	if !s.Okay() {
		t.Fatal("assumption failure must not mark the solver globally UNSAT")
	}
	if !s.Solve() {
		t.Fatal("dropping the assumptions must restore SAT")
	}
}

func TestSolveAssumingAlreadyTrueAndConflicting(t *testing.T) {
	s := New()
	x := s.NewVar()
	s.AddClause(MkLit(x, false)) // unit: x
	if !s.SolveAssuming(MkLit(x, false)) {
		t.Fatal("assuming an already-forced literal should be SAT")
	}
	if s.SolveAssuming(MkLit(x, true)) {
		t.Fatal("assuming the negation of a forced literal should be UNSAT")
	}
	if !s.Okay() {
		t.Fatal("solver must stay usable")
	}
	// Duplicate and self-contradictory assumption lists.
	if !s.SolveAssuming(MkLit(x, false), MkLit(x, false)) {
		t.Fatal("duplicate assumptions should be SAT")
	}
	if s.SolveAssuming(MkLit(x, false), MkLit(x, true)) {
		t.Fatal("contradictory assumptions should be UNSAT")
	}
}

func TestAddClauseBetweenSolves(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	if !s.Solve() {
		t.Fatal("should be SAT")
	}
	// Block the found model, twice; four assignments minus three blocked
	// still leaves a∨b satisfiable until all three satisfying rows go.
	for i := 0; i < 3; i++ {
		block := []Lit{MkLit(a, s.Value(a)), MkLit(b, s.Value(b))}
		s.AddClause(block...)
		sat := s.Solve()
		if i < 2 && !sat {
			t.Fatalf("blocking iteration %d: expected SAT", i)
		}
		if i == 2 && sat {
			t.Fatal("all satisfying assignments blocked: expected UNSAT")
		}
	}
	if s.Okay() {
		t.Fatal("exhausting all models must derive a global contradiction")
	}
}

func TestLearnedClauseRetention(t *testing.T) {
	// Pigeonhole clauses gated behind a selector: assuming the selector
	// forces the solver through the full UNSAT proof, learning clauses
	// that persist for later calls.
	s := New()
	const pigeons, holes = 5, 4
	sel := s.NewVar()
	v := func(p, h int) int { return 1 + p*holes + h }
	for i := 0; i < pigeons*holes; i++ {
		s.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		lits := []Lit{MkLit(sel, true)}
		for h := 0; h < holes; h++ {
			lits = append(lits, MkLit(v(p, h), false))
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(sel, true), MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	if s.SolveAssuming(MkLit(sel, false)) {
		t.Fatal("gated pigeonhole should be UNSAT under the selector")
	}
	if s.Learned() == 0 {
		t.Fatal("the UNSAT proof must have learned clauses")
	}
	if !s.Okay() {
		t.Fatal("only an assumption failed; the solver is not globally UNSAT")
	}
	if !s.SolveAssuming(MkLit(sel, true)) {
		t.Fatal("negating the selector disables the pigeonhole clauses: SAT")
	}
	if s.Value(sel) {
		t.Fatal("model must respect the ¬sel assumption")
	}
}

func TestStopReturnsUnknown(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.Stop()
	if got := s.SolveWith(nil); got != Unknown {
		t.Fatalf("stopped solver returned %v, want Unknown", got)
	}
	s.ResetStop()
	if got := s.SolveWith(nil); got != Sat {
		t.Fatalf("after ResetStop got %v, want Sat", got)
	}
}

func TestConcurrentStopTerminates(t *testing.T) {
	// A hard instance cancelled from another goroutine must return; the
	// verdict may be Unknown (stopped in time) or Unsat (finished first).
	s := New()
	const pigeons, holes = 9, 8
	v := func(p, h int) int { return p*holes + h }
	for i := 0; i < pigeons*holes; i++ {
		s.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	done := make(chan Outcome, 1)
	go func() { done <- s.SolveWith(nil) }()
	s.Stop()
	if got := <-done; got == Sat {
		t.Fatalf("pigeonhole cannot be SAT, got %v", got)
	}
}

// TestRandomIncrementalAgainstBruteForce interleaves clause additions and
// assumption-based solves on one long-lived solver and cross-checks every
// verdict against enumeration — the soundness property session reuse
// depends on: learned clauses must stay valid as clauses arrive and
// assumptions change.
func TestRandomIncrementalAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		n := 4 + r.Intn(6) // 4..9 vars
		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		var cnf [][]Lit
		for round := 0; round < 6; round++ {
			for k := 1 + r.Intn(3); k > 0 && s.Okay(); k-- {
				width := 1 + r.Intn(3)
				cl := make([]Lit, width)
				for j := range cl {
					cl[j] = MkLit(r.Intn(n), r.Intn(2) == 1)
				}
				cnf = append(cnf, cl)
				s.AddClause(cl...)
			}
			var assumps []Lit
			for j := 0; j < r.Intn(3); j++ {
				assumps = append(assumps, MkLit(r.Intn(n), r.Intn(2) == 1))
			}
			// Brute-force reference: assumptions as extra unit clauses.
			ref := append([][]Lit{}, cnf...)
			for _, a := range assumps {
				ref = append(ref, []Lit{a})
			}
			want, _ := bruteForce(n, ref)
			got := s.SolveWith(assumps)
			if got == Unknown {
				t.Fatalf("iter %d round %d: unexpected Unknown", iter, round)
			}
			if (got == Sat) != want {
				t.Fatalf("iter %d round %d: incremental=%v brute=%v cnf=%v assumps=%v",
					iter, round, got, want, cnf, assumps)
			}
			if got == Sat {
				for ci, cl := range ref {
					ok := false
					for _, l := range cl {
						if s.Value(l.Var()) != l.Neg() {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("iter %d round %d: model violates clause %d (%v)", iter, round, ci, cl)
					}
				}
			}
		}
	}
}
