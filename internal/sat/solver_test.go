package sat

import (
	"math/rand"
	"testing"
)

func TestLitEncoding(t *testing.T) {
	p := MkLit(3, false)
	n := MkLit(3, true)
	if p.Var() != 3 || n.Var() != 3 {
		t.Fatal("Var() broken")
	}
	if p.Neg() || !n.Neg() {
		t.Fatal("Neg() broken")
	}
	if p.Not() != n || n.Not() != p {
		t.Fatal("Not() broken")
	}
}

func TestTrivialSAT(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if !s.Solve() {
		t.Fatal("single unit clause should be SAT")
	}
	if !s.Value(a) {
		t.Fatal("model should set a=true")
	}
}

func TestTrivialUNSAT(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true))
	if s.Solve() {
		t.Fatal("a and not-a should be UNSAT")
	}
}

func TestEmptyClauseUNSAT(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause should report false")
	}
	if s.Solve() {
		t.Fatal("empty clause means UNSAT")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(a, true)) // tautology
	if !s.Solve() {
		t.Fatal("tautology-only formula should be SAT")
	}
}

func TestChainImplication(t *testing.T) {
	// x0 and (¬x_i ∨ x_{i+1}) for a long chain; forces all true.
	s := New()
	const n = 200
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(MkLit(vars[0], false))
	for i := 0; i+1 < n; i++ {
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], false))
	}
	if !s.Solve() {
		t.Fatal("implication chain should be SAT")
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("var %d should be forced true", i)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons in 3 holes is UNSAT and requires real search.
	s := New()
	const pigeons, holes = 4, 3
	v := func(p, h int) int { return p*holes + h }
	for i := 0; i < pigeons*holes; i++ {
		s.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	if s.Solve() {
		t.Fatal("pigeonhole 4-into-3 should be UNSAT")
	}
}

func TestGraphColoringSAT(t *testing.T) {
	// A 5-cycle is 3-colorable.
	s := New()
	const n, k = 5, 3
	v := func(node, color int) int { return node*k + color }
	for i := 0; i < n*k; i++ {
		s.NewVar()
	}
	for node := 0; node < n; node++ {
		lits := make([]Lit, k)
		for c := 0; c < k; c++ {
			lits[c] = MkLit(v(node, c), false)
		}
		s.AddClause(lits...)
		for c1 := 0; c1 < k; c1++ {
			for c2 := c1 + 1; c2 < k; c2++ {
				s.AddClause(MkLit(v(node, c1), true), MkLit(v(node, c2), true))
			}
		}
	}
	for node := 0; node < n; node++ {
		next := (node + 1) % n
		for c := 0; c < k; c++ {
			s.AddClause(MkLit(v(node, c), true), MkLit(v(next, c), true))
		}
	}
	if !s.Solve() {
		t.Fatal("5-cycle should be 3-colorable")
	}
	// Validate the coloring from the model.
	color := make([]int, n)
	for node := 0; node < n; node++ {
		color[node] = -1
		for c := 0; c < k; c++ {
			if s.Value(v(node, c)) {
				color[node] = c
				break
			}
		}
		if color[node] < 0 {
			t.Fatalf("node %d uncolored in model", node)
		}
	}
	for node := 0; node < n; node++ {
		if color[node] == color[(node+1)%n] {
			t.Fatalf("model gives adjacent nodes %d,%d the same color", node, (node+1)%n)
		}
	}
}

// bruteForce decides a CNF by enumeration; n must be small.
func bruteForce(n int, cnf [][]Lit) (bool, uint32) {
	for m := uint32(0); m < 1<<uint(n); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m>>uint(l.Var())&1 == 1
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true, m
		}
	}
	return false, 0
}

// TestRandom3SATAgainstBruteForce is the core soundness property: on random
// small formulas the CDCL verdict must match enumeration, and SAT models
// must actually satisfy every clause.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 400; iter++ {
		n := 3 + r.Intn(8)   // 3..10 vars
		m := 1 + r.Intn(5*n) // up to ~5n clauses
		cnf := make([][]Lit, 0, m)
		for i := 0; i < m; i++ {
			width := 1 + r.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(r.Intn(n), r.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		want, _ := bruteForce(n, cnf)

		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		got := s.Solve()
		if got != want {
			t.Fatalf("iter %d: CDCL=%v brute=%v for n=%d cnf=%v", iter, got, want, n, cnf)
		}
		if got {
			for ci, cl := range cnf {
				sat := false
				for _, l := range cl {
					if s.Value(l.Var()) != l.Neg() {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model does not satisfy clause %d (%v)", iter, ci, cl)
				}
			}
		}
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard UNSAT instance with a tiny budget must return without hanging.
	s := New()
	s.MaxConf = 5
	const pigeons, holes = 7, 6
	v := func(p, h int) int { return p*holes + h }
	for i := 0; i < pigeons*holes; i++ {
		s.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	s.Solve() // must terminate promptly; verdict unspecified under budget
	_, _, conflicts := s.Stats()
	if conflicts == 0 {
		t.Fatal("expected some conflicts before budget exhaustion")
	}
}

func TestAddClauseAtLevelZeroSimplifies(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false))                 // a = true
	s.AddClause(MkLit(a, true), MkLit(b, false)) // a -> b
	if !s.Solve() {
		t.Fatal("should be SAT")
	}
	if !s.Value(a) || !s.Value(b) {
		t.Fatal("propagation through level-0 units failed")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}
