package exec

// Submodel content keys: the memoization key of a submodel covers exactly
// the inputs that determine its execution result, so a key hit is a proof
// that re-execution would reproduce the cached verdict. The incremental
// engine (internal/incr) memoizes verdicts under these keys, and the
// cluster (internal/cluster) routes submodels to worker nodes by them —
// one key family, shared by every verdict-cache tier in the system.
//
//   - The full global store, in declaration order. Order matters: solver
//     variable numbering follows it, and the satisfying model a SAT search
//     lands on — the reported counterexample — can depend on numbering.
//   - The entry chain and every function reachable from it (names and
//     canonical body dumps). Unreachable functions are excluded — that is
//     what makes the key precise enough for an edit in one table's action
//     to leave sibling submodels' keys unchanged.
//   - The assertion-table rows for every assertion checked in reachable
//     code (ID, source text, report location, deferredness): violations
//     embed them verbatim.
//   - The executor options that shape exploration (call-depth bound, path
//     budget, optimization level).
//
// Wall-clock options (deadline, cancellation context) are deliberately
// excluded: they only matter when they cut a run short, and cut-short
// (Exhausted) results are never cached.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"p4assert/internal/model"
	"p4assert/internal/sym"
)

// keyVersion invalidates every cached verdict when the serialization or
// executor semantics change incompatibly. v2: sym.Metrics gained
// assert-check/frontier and bitblast counters; v1 verdicts would replay
// them as zero and diverge from a cold run's report. v3: counterexample
// input naming switched to per-hint numbering (hint#k), so v2 verdicts
// carry stale path-global names. v4: full-query models became the
// canonical lexicographically-minimal witness (solver acceleration), so
// v3 verdicts carry whatever model CDCL happened to land on.
const keyVersion = "p4assert-subkey-v4"

// SubmodelKey digests a submodel's executable content under the given
// executor options.
func SubmodelKey(sub *model.Program, opts sym.Options) string {
	h := sha256.New()
	io.WriteString(h, keyVersion+"\x00")

	for _, g := range sub.Globals {
		fmt.Fprintf(h, "g %s %d %t %d\x00", g.Name, g.Width, g.Symbolic, g.Init)
	}
	for _, e := range sub.Entry {
		fmt.Fprintf(h, "e %s\x00", e)
	}

	reach := ReachableFuncs(sub)
	names := make([]string, 0, len(reach))
	for name := range reach {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "f %s\x00%s\x00", name, model.DumpStmts(sub.Funcs[name].Body))
	}

	for _, id := range ReachableAssertIDs(sub, reach) {
		if id < 0 || id >= len(sub.Asserts) {
			continue
		}
		a := sub.Asserts[id]
		fmt.Fprintf(h, "a %d %q %q %t\x00", a.ID, a.Source, a.Location, a.Deferred)
	}

	depth := opts.MaxCallDepth
	if depth == 0 {
		depth = 8 // the executor's default; normalize so 0 and 8 alias
	}
	fmt.Fprintf(h, "o depth=%d paths=%d opt=%t\x00", depth, opts.MaxPaths, opts.Opt)
	return hex.EncodeToString(h.Sum(nil))
}

// ReachableFuncs returns the functions reachable from the program's entry
// chain by walking Call statements (through If and Fork bodies).
func ReachableFuncs(p *model.Program) map[string]*model.Func {
	reach := map[string]*model.Func{}
	var visit func(name string)
	visit = func(name string) {
		if _, done := reach[name]; done {
			return
		}
		f, ok := p.Funcs[name]
		if !ok {
			return
		}
		reach[name] = f
		WalkModelStmts(f.Body, func(s model.Stmt) {
			if c, isCall := s.(*model.Call); isCall {
				visit(c.Func)
			}
		})
	}
	for _, e := range p.Entry {
		visit(e)
	}
	return reach
}

// ReachableAssertIDs collects the IDs of AssertCheck statements in the
// reachable functions, sorted and deduplicated.
func ReachableAssertIDs(p *model.Program, reach map[string]*model.Func) []int {
	seen := map[int]bool{}
	for _, f := range reach {
		WalkModelStmts(f.Body, func(s model.Stmt) {
			if a, ok := s.(*model.AssertCheck); ok {
				seen[a.ID] = true
			}
		})
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// WalkModelStmts visits every statement in body, depth-first through If
// and Fork nesting.
func WalkModelStmts(body []model.Stmt, visit func(model.Stmt)) {
	for _, s := range body {
		visit(s)
		switch x := s.(type) {
		case *model.If:
			WalkModelStmts(x.Then, visit)
			WalkModelStmts(x.Else, visit)
		case *model.Fork:
			for _, b := range x.Branches {
				WalkModelStmts(b, visit)
			}
		}
	}
}
