// Package exec defines the transport-agnostic submodel-execution boundary
// of the verification pipeline: "execute one submodel, return its
// verdict". The paper's static submodel split makes each submodel an
// independent, embarrassingly-parallel unit of work, and everything above
// this boundary — the cold parallel pipeline (internal/submodel via
// internal/core), the incremental engine (internal/incr) and the service
// (internal/service) — is agnostic to where that work runs. Two
// implementations exist:
//
//   - Local (this package): sym.Execute in-process, the single-machine
//     worker pool p4served has always had.
//   - cluster.Coordinator (internal/cluster): dispatch over an HTTP/JSON
//     RPC to remote worker nodes, routed by the submodel's
//     content-addressed key so worker-side verdict caches shard
//     consistently across the cluster.
//
// Because symbolic execution is deterministic and submodel verdicts are
// content-addressed, the two are interchangeable: a report assembled from
// remote verdicts is byte-identical (core.Report.ComparableJSON) to a
// purely local run. internal/cluster's corpus equivalence test enforces
// this end-to-end.
package exec

import (
	"context"
	"fmt"
	"sync"

	"p4assert/internal/model"
	"p4assert/internal/sym"
	"p4assert/internal/telemetry"
)

// Request describes one submodel execution. In-process executors run
// Submodel directly; remote executors rebuild it from Job (the split is a
// deterministic function of the job spec) and trust Key to detect skew.
type Request struct {
	// Submodel is the split submodel, in hand for in-process execution.
	Submodel *model.Program
	// Index is the submodel's position in canonical split order; Total is
	// the split's submodel count. Remote executors use both to select the
	// same submodel from their rebuilt split and to sanity-check it.
	Index int
	Total int
	// Key is the submodel's executable-content digest (SubmodelKey): the
	// memoization key of distributed verdict-cache tiers and the routing
	// key of consistent-hash dispatch. Empty for purely local runs, which
	// need neither.
	Key string
	// Opts configures the symbolic executor.
	Opts sym.Options
	// Job, when non-nil, is the rebuild-from-source recipe remote
	// executors need; local executors ignore it.
	Job *JobSpec
}

// Executor runs one submodel to its verdict. Implementations must be safe
// for concurrent use: the fan-out pool issues many calls at once.
type Executor interface {
	ExecuteSubmodel(ctx context.Context, req *Request) (*sym.Result, error)
}

// Local is the in-process Executor: sym.Execute on the calling machine.
type Local struct{}

// ExecuteSubmodel implements Executor.
func (Local) ExecuteSubmodel(_ context.Context, req *Request) (*sym.Result, error) {
	return sym.Execute(req.Submodel, req.Opts)
}

// RunAll executes every request through ex on up to workers concurrent
// slots, returning results in request order. Each execution runs under its
// own "submodel[i]" telemetry lane annotated with the executor's work
// counters — the display contract cold, incremental and clustered runs all
// share. The first execution error aborts the batch.
func RunAll(ctx context.Context, reqs []*Request, ex Executor, workers int) ([]*sym.Result, error) {
	if workers <= 0 {
		workers = 4
	}
	results := make([]*sym.Result, len(reqs))
	errs := make([]error, len(reqs))

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req *Request) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Cancellation travels inside req.Opts.Ctx; ctx carries telemetry.
			lctx, sp := telemetry.StartLane(ctx, fmt.Sprintf("submodel[%d]", req.Index))
			results[i], errs[i] = ex.ExecuteSubmodel(lctx, req)
			if results[i] != nil {
				AnnotateSpan(sp, results[i].Metrics)
			}
			sp.End()
		}(i, req)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// AnnotateSpan attaches a submodel execution's work counters to its span.
// Every execution path — cold pool, incremental replay, remote dispatch —
// uses it so trace timelines stay structurally comparable.
func AnnotateSpan(sp *telemetry.Span, m sym.Metrics) {
	if sp == nil {
		return
	}
	sp.SetAttr("paths", m.Paths)
	sp.SetAttr("forks", m.Forks)
	sp.SetAttr("instructions", m.Instructions)
	sp.SetAttr("assert_checks", m.AssertChecks)
	sp.SetAttr("max_frontier", m.MaxFrontier)
	sp.SetAttr("solver_queries", m.Solver.Queries)
}
