package exec

// JobSpec is the rebuild-from-source recipe a remote executor needs to
// reconstruct a submodel: the program text, the canonical rule
// configuration, and every pipeline option that shapes the translated
// model or its split. Parse, typecheck, translation, optimization,
// slicing and the submodel split are all deterministic functions of these
// fields, so a worker that rebuilds from an identical JobSpec derives an
// identical submodel list — and proves it by recomputing each submodel's
// content key (Request.Key) before executing.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// JobSpec describes how to rebuild a verification job's submodels from
// source. The zero value is not meaningful; core builds one per run.
type JobSpec struct {
	// Filename appears in diagnostics and assertion locations, which are
	// part of violation reports — so it does affect result bytes and is
	// part of the digest.
	Filename string `json:"filename,omitempty"`
	// Source is the annotated P4_16 program text.
	Source string `json:"source"`
	// Rules is the canonical rules-text rendering of the forwarding-rule
	// configuration ("" = none).
	Rules string `json:"rules,omitempty"`
	// Pipeline options mirroring core.Options (Parallel is absent: the
	// split is explicit at this boundary, not a worker-pool width).
	O3                 bool  `json:"o3,omitempty"`
	Opt                bool  `json:"opt,omitempty"`
	Slice              bool  `json:"slice,omitempty"`
	MaxCallDepth       int   `json:"max_call_depth,omitempty"`
	MaxPaths           int64 `json:"max_paths,omitempty"`
	RegisterCellLimit  int   `json:"register_cell_limit,omitempty"`
	AutoValidityChecks bool  `json:"auto_validity_checks,omitempty"`
}

// Digest content-addresses the spec: remote workers memoize the rebuilt
// (and split) model under it, so a batch of submodel requests for one job
// pays the front end once per worker, not once per submodel.
func (j *JobSpec) Digest() string {
	h := sha256.New()
	io.WriteString(h, "p4assert-jobspec-v1\x00")
	io.WriteString(h, j.Filename)
	io.WriteString(h, "\x00")
	io.WriteString(h, j.Source)
	io.WriteString(h, "\x00")
	io.WriteString(h, j.Rules)
	io.WriteString(h, "\x00")
	fmt.Fprintf(h, "o3=%t opt=%t slice=%t depth=%d paths=%d regcells=%d autovalid=%t",
		j.O3, j.Opt, j.Slice, j.MaxCallDepth, j.MaxPaths, j.RegisterCellLimit, j.AutoValidityChecks)
	return hex.EncodeToString(h.Sum(nil))
}
