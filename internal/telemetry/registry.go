package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// metric kinds, as rendered on the Prometheus TYPE line.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric with its help text, kind and labeled series.
type family struct {
	name   string
	help   string
	kind   string
	series map[string]*series // keyed by canonical label rendering
}

// series is one (name, labels) instrument.
type series struct {
	labels []Label // sorted by key
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. It is safe for concurrent use; instrument getters
// are idempotent (the same name+labels returns the same instrument), so
// callers may re-resolve on every observation or hold the pointer.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter for name+labels, creating it on first use.
// It panics if name is already registered with a different kind, or if a
// name or label key is not a valid Prometheus identifier — both are
// programming errors, caught by the exposition-lint tests.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.seriesFor(name, help, kindCounter, labels)
	return s.ctr
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.seriesFor(name, help, kindGauge, labels)
	return s.gauge
}

// Histogram returns the histogram for name+labels, creating it on first
// use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	s := r.seriesFor(name, help, kindHistogram, labels)
	return s.hist
}

func (r *Registry) seriesFor(name, help, kind string, labels []Label) *series {
	if !validName(name) {
		panic("telemetry: invalid metric name " + name)
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for _, l := range ls {
		if !validName(l.Key) || l.Key == "le" {
			panic("telemetry: invalid label key " + l.Key + " on metric " + name)
		}
	}
	key := renderLabels(ls, "")

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: ls}
		switch kind {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = &Histogram{}
		}
		f.series[key] = s
	}
	return s
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), deterministically: families sorted by name,
// series sorted by their label rendering. Histograms expose the full
// untrimmed bucket set in seconds, plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)

		keys := make([]string, 0, len(f.series))
		byKey := make(map[string]*series, len(f.series))
		// Snapshot under the registry lock so a concurrent getter
		// creating a series does not race the map iteration.
		r.mu.Lock()
		for k, s := range f.series {
			keys = append(keys, k)
			byKey[k] = s
		}
		r.mu.Unlock()
		sort.Strings(keys)

		for _, k := range keys {
			s := byKey[k]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels, ""), s.ctr.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels, ""), s.gauge.Value())
			case kindHistogram:
				writePromHistogram(&b, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram series: cumulative _bucket
// lines with le in seconds, the +Inf bucket, _sum (seconds) and _count.
func writePromHistogram(b *strings.Builder, name string, s *series) {
	counts, count, sum := s.hist.export()
	cum := int64(0)
	boundMS := int64(1)
	for i := 0; i < HistBuckets; i++ {
		cum += counts[i]
		if i == HistBuckets-1 {
			fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(s.labels, "+Inf"), cum)
			break
		}
		le := fmt.Sprintf("%g", float64(boundMS)/1000)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(s.labels, le), cum)
		boundMS *= 2
	}
	fmt.Fprintf(b, "%s_sum%s %g\n", name, renderLabels(s.labels, ""), sum.Seconds())
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(s.labels, ""), count)
}

// renderLabels renders a sorted label set as {k="v",...}; le, when
// non-empty, is appended as the histogram bucket bound. An empty set with
// no le renders as the empty string.
func renderLabels(ls []Label, le string) string {
	if len(ls) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		// Go's %q escaping (backslash, quote, \n) matches the exposition
		// format for the ASCII label values used here.
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if le != "" {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes a HELP text (backslash and newline).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// validName reports whether s is a legal Prometheus metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
