package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Microsecond) // bucket 0 (<1ms)
	h.Observe(3 * time.Millisecond)   // bucket 2 (<4ms)
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.SumMS != 6 {
		t.Fatalf("sum_ms = %d, want 6", s.SumMS)
	}
	// Cumulative: bucket le=1 holds 1, le=2 holds 1, le=4 holds 3; the
	// tail beyond the first all-covering bucket is trimmed.
	want := []HistogramBucket{{1, 1}, {2, 1}, {4, 3}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(30 * time.Minute) // beyond the largest finite bound
	s := h.Snapshot()
	last := s.Buckets[len(s.Buckets)-1]
	if last.LeMS != -1 || last.Count != 1 {
		t.Fatalf("overflow bucket = %+v, want {-1 1}", last)
	}
}

func TestRegistryIdempotentAndConcurrent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if r.Counter("x_total", "help", L("k", "w")) == a {
		t.Fatal("distinct labels returned the same counter")
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("x_total", "help", L("k", "v")).Inc()
				r.Gauge("g", "help").Set(int64(j))
				r.Histogram("h_seconds", "help").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := a.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge registration over a counter name did not panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestSpanNestingAndLanes(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)

	ctx, root := StartSpan(ctx, "root")
	if root == nil {
		t.Fatal("no span with a trace in context")
	}
	cctx, child := StartSpan(ctx, "child")
	if child.Parent != root.ID {
		t.Fatalf("child parent = %d, want %d", child.Parent, root.ID)
	}
	if child.Lane != root.Lane {
		t.Fatalf("child lane = %d, want root's %d", child.Lane, root.Lane)
	}
	_, worker := StartLane(cctx, "worker")
	if worker.Parent != child.ID {
		t.Fatalf("worker parent = %d, want %d", worker.Parent, child.ID)
	}
	if worker.Lane == child.Lane {
		t.Fatal("StartLane reused the parent's lane")
	}
	worker.End()
	child.End()
	root.End()

	if got := len(tr.Spans()); got != 3 {
		t.Fatalf("%d spans recorded, want 3", got)
	}
	if tr.Find("worker") == nil {
		t.Fatal("Find missed the worker span")
	}
}

func TestSpanNoTraceNoOp(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "orphan")
	if sp != nil {
		t.Fatal("span created without a trace")
	}
	// Every method must be a safe no-op on the nil span.
	sp.SetAttr("k", 1)
	sp.MarkCached()
	sp.End()
	if sp.Duration() != 0 || sp.IsCached() || !sp.EndTime().IsZero() {
		t.Fatal("nil span is not inert")
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("no-op StartSpan polluted the context")
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	tr := NewTrace()
	_, sp := StartSpan(WithTrace(context.Background(), tr), "s")
	sp.End()
	first := sp.EndTime()
	time.Sleep(time.Millisecond)
	sp.End()
	if !sp.EndTime().Equal(first) {
		t.Fatal("second End moved the end time")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "execute")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartLane(ctx, "submodel")
			sp.SetAttr("paths", 1)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()

	lanes := map[int64]bool{}
	for _, sp := range tr.Spans() {
		if sp.Name != "submodel" {
			continue
		}
		if sp.Parent != root.ID {
			t.Fatalf("submodel parent = %d, want %d", sp.Parent, root.ID)
		}
		if lanes[sp.Lane] {
			t.Fatalf("lane %d assigned to two concurrent submodel spans", sp.Lane)
		}
		lanes[sp.Lane] = true
	}
	if len(lanes) != 16 {
		t.Fatalf("%d submodel lanes, want 16", len(lanes))
	}
}

func TestPrometheusOutputIsSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last").Add(1)
	r.Counter("aa_total", "first", L("t", "b")).Add(2)
	r.Counter("aa_total", "first", L("t", "a")).Add(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ia, iz := strings.Index(out, "aa_total"), strings.Index(out, "zz_total")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("families not sorted:\n%s", out)
	}
	if strings.Index(out, `t="a"`) > strings.Index(out, `t="b"`) {
		t.Fatalf("series not sorted:\n%s", out)
	}
}
