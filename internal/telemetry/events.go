package telemetry

// Live event feed: every span transition on a traced run can be
// published, in order, to subscribers while the run is still executing.
// A Bus assigns each event a monotonically increasing sequence number,
// keeps a bounded history ring so late subscribers can backfill, and
// fans out to per-subscriber bounded rings. Publishing never blocks on a
// consumer: a subscriber that falls behind loses its oldest buffered
// events and sees an explicit "dropped" marker instead, so the
// executor's hot path is insulated from slow SSE clients by one short
// mutex hold per event.

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// Event kinds.
const (
	// KindSpanStart / KindSpanEnd bracket a span's lifetime.
	KindSpanStart = "span_start"
	KindSpanEnd   = "span_end"
	// KindAttr reports one integer attribute set on a span (Key/Val).
	KindAttr = "attr"
	// KindTag reports one string attribute set on a span (Key/Str).
	KindTag = "tag"
	// KindCached marks a span as a memoized replay.
	KindCached = "cached"
	// KindJob is a service-level lifecycle marker (Name = pending,
	// running, resumed, done, failed, cancelled; detail in Str/Val).
	KindJob = "job"
	// KindDropped is a synthesized gap marker: Dropped events between
	// the previous delivered event and the next one were lost to a
	// bounded buffer. It carries no sequence number of its own.
	KindDropped = "dropped"
)

// Event is one record on the feed. Seq is assigned by the Bus and is
// strictly increasing per trace; TS is Unix nanoseconds. Span-scoped
// fields (Span/Parent/Lane/Name) identify the span; Key/Val/Str carry
// attribute payloads; RequestID correlates the feed with access logs.
type Event struct {
	Seq       int64  `json:"seq"`
	TS        int64  `json:"ts"`
	Kind      string `json:"kind"`
	Span      int64  `json:"span,omitempty"`
	Parent    int64  `json:"parent,omitempty"`
	Lane      int64  `json:"lane,omitempty"`
	Name      string `json:"name,omitempty"`
	Key       string `json:"key,omitempty"`
	Val       int64  `json:"val,omitempty"`
	Str       string `json:"str,omitempty"`
	Dropped   int64  `json:"dropped,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// ErrFeedClosed is returned by Sub.NextBatch once the bus has closed and
// every buffered event has been delivered.
var ErrFeedClosed = errors.New("telemetry: event feed closed")

// DefaultBusHistory is the history ring size used when NewBus is given a
// non-positive capacity.
const DefaultBusHistory = 8192

// Bus is the per-trace event fanout. Safe for concurrent use.
type Bus struct {
	mu        sync.Mutex
	requestID string
	seq       int64
	hist      []Event // ring, grown geometrically up to histCap
	histCap   int
	histHead  int // index of oldest
	histLen   int
	evicted   int64 // events pushed out of the history ring
	subs      map[*Sub]struct{}
	closed    bool
	published int64
	dropped   int64 // subscriber-side drops, summed
}

// NewBus returns a bus whose history ring holds histCap events
// (DefaultBusHistory if histCap <= 0). The ring grows on demand, so an
// idle or short-lived bus costs only what it actually records — a
// service retains one bus per finished job.
func NewBus(histCap int) *Bus {
	if histCap <= 0 {
		histCap = DefaultBusHistory
	}
	return &Bus{histCap: histCap, subs: map[*Sub]struct{}{}}
}

// SetRequestID sets the correlation ID stamped onto every subsequently
// published event envelope.
func (b *Bus) SetRequestID(id string) {
	b.mu.Lock()
	b.requestID = id
	b.mu.Unlock()
}

// Publish assigns the next sequence number to ev, records it in history
// and fans it out. It returns the assigned sequence, or 0 if the bus is
// closed. A zero TS is stamped with the current time.
func (b *Bus) Publish(ev Event) int64 {
	if ev.TS == 0 {
		ev.TS = time.Now().UnixNano()
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0
	}
	b.seq++
	ev.Seq = b.seq
	if ev.RequestID == "" {
		ev.RequestID = b.requestID
	}
	b.histPush(ev)
	b.published++
	for s := range b.subs {
		if s.push(ev) {
			b.dropped++
		}
	}
	b.mu.Unlock()
	return ev.Seq
}

// histPush appends to the history ring, growing it up to histCap and
// evicting the oldest entry beyond that. Caller holds b.mu.
func (b *Bus) histPush(ev Event) {
	if b.histLen == len(b.hist) {
		if len(b.hist) < b.histCap {
			b.hist = growRing(b.hist, b.histHead, b.histLen, b.histCap)
			b.histHead = 0
		} else {
			b.hist[b.histHead] = ev
			b.histHead = (b.histHead + 1) % len(b.hist)
			b.evicted++
			return
		}
	}
	b.hist[(b.histHead+b.histLen)%len(b.hist)] = ev
	b.histLen++
}

// growRing doubles a ring buffer (at least 64 slots, at most cap),
// unrolling it so the oldest entry lands at index 0.
func growRing(ring []Event, head, n, capacity int) []Event {
	size := 2 * len(ring)
	if size < 64 {
		size = 64
	}
	if size > capacity {
		size = capacity
	}
	out := make([]Event, size)
	for i := 0; i < n; i++ {
		out[i] = ring[(head+i)%len(ring)]
	}
	return out
}

// Preload seeds the bus with events recovered from a journal: they enter
// the history ring (newest retained if the journal exceeds capacity) and
// the sequence counter resumes after the highest preloaded Seq, so a
// resumed run continues the same ordered stream.
func (b *Bus) Preload(events []Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ev := range events {
		if ev.Seq > b.seq {
			b.seq = ev.Seq
		}
		b.histPush(ev)
	}
}

// Seq returns the latest assigned sequence number.
func (b *Bus) Seq() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Stats returns (published, dropped): events published on this bus and
// events lost from subscriber buffers.
func (b *Bus) Stats() (published, dropped int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published, b.dropped
}

// Subscribe registers a consumer whose buffer holds up to bufCap events
// (DefaultBusHistory if bufCap <= 0). History with Seq > afterSeq is
// backfilled immediately; if part of that range has already been evicted
// from the history ring, the subscriber's first delivery starts with a
// KindDropped marker covering the gap. Subscribing to a closed bus still
// backfills history and then reports ErrFeedClosed.
func (b *Bus) Subscribe(afterSeq int64, bufCap int) *Sub {
	if bufCap <= 0 {
		bufCap = DefaultBusHistory
	}
	s := &Sub{bus: b, cap: bufCap, notify: make(chan struct{}, 1)}
	b.mu.Lock()
	oldest := int64(0) // seq of oldest event still in history
	if b.histLen > 0 {
		oldest = b.hist[b.histHead].Seq
	}
	if b.histLen == 0 {
		if afterSeq < b.seq {
			s.dropped += b.seq - afterSeq
		}
	} else if afterSeq+1 < oldest {
		s.dropped += oldest - afterSeq - 1
	}
	for i := 0; i < b.histLen; i++ {
		ev := b.hist[(b.histHead+i)%len(b.hist)]
		if ev.Seq > afterSeq {
			if s.push(ev) {
				b.dropped++
			}
		}
	}
	if b.closed {
		s.closed = true
	} else {
		b.subs[s] = struct{}{}
	}
	b.mu.Unlock()
	return s
}

// Close ends the stream: subscribers drain whatever they have buffered
// and then see ErrFeedClosed. Publish after Close is a no-op.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Sub, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = map[*Sub]struct{}{}
	b.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
}

// Sub is one subscription on a Bus. Not safe for concurrent NextBatch
// calls; one consumer goroutine per Sub.
type Sub struct {
	bus *Bus

	mu      sync.Mutex
	buf     []Event // ring, grown geometrically up to cap
	cap     int
	head, n int
	dropped int64
	closed  bool
	notify  chan struct{}
}

// push enqueues ev, dropping the oldest buffered event when full.
// Reports whether an event was dropped.
func (s *Sub) push(ev Event) bool {
	s.mu.Lock()
	droppedOne := false
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.n == len(s.buf) {
		if len(s.buf) < s.cap {
			s.buf = growRing(s.buf, s.head, s.n, s.cap)
			s.head = 0
		} else {
			s.head = (s.head + 1) % len(s.buf)
			s.n--
			s.dropped++
			droppedOne = true
		}
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return droppedOne
}

func (s *Sub) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Cancel detaches the subscription from the bus and discards its buffer.
func (s *Sub) Cancel() {
	s.bus.mu.Lock()
	delete(s.bus.subs, s)
	s.bus.mu.Unlock()
	s.close()
}

// NextBatch blocks until at least one event is buffered, then returns
// everything currently buffered in order. If events were lost to the
// bounded buffer since the last delivery, the batch starts with a
// synthesized KindDropped marker (Seq 0). It returns ctx.Err() when the
// context ends and ErrFeedClosed once the bus has closed and the buffer
// is drained.
func (s *Sub) NextBatch(ctx context.Context) ([]Event, error) {
	for {
		s.mu.Lock()
		if s.n > 0 {
			out := make([]Event, 0, s.n+1)
			if s.dropped > 0 {
				out = append(out, Event{
					Kind:    KindDropped,
					TS:      time.Now().UnixNano(),
					Dropped: s.dropped,
				})
				s.dropped = 0
			}
			for i := 0; i < s.n; i++ {
				out = append(out, s.buf[(s.head+i)%len(s.buf)])
			}
			s.head, s.n = 0, 0
			s.mu.Unlock()
			return out, nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil, ErrFeedClosed
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.notify:
		}
	}
}

// ImportedSpan describes a span recorded in another process (a cluster
// worker), with times already re-anchored to this process's clock by the
// caller.
type ImportedSpan struct {
	ID     int64
	Parent int64
	Name   string
	Start  time.Time
	End    time.Time
	Cached bool
	Attrs  map[string]int64
}

// Import grafts remote spans into the trace as children of parent
// (spans whose remote Parent is 0 or unknown attach directly to parent).
// Imported spans get fresh local IDs, inherit parent's lane, and publish
// the same event sequence a local span would — with the remote
// timestamps — so a live feed covers distributed runs.
func (t *Trace) Import(parent *Span, spans []ImportedSpan) {
	idMap := make(map[int64]*Span, len(spans))
	for i := range spans {
		rs := &spans[i]
		sp := &Span{tr: t, Name: rs.Name, Start: rs.Start, end: rs.End, cached: rs.Cached}
		if len(rs.Attrs) > 0 {
			sp.attrs = make(map[string]int64, len(rs.Attrs))
			for k, v := range rs.Attrs {
				sp.attrs[k] = v
			}
		}
		var lane int64
		if parent != nil {
			sp.Parent = parent.ID
			lane = parent.Lane
		}
		if p, ok := idMap[rs.Parent]; ok {
			sp.Parent = p.ID
			lane = p.Lane
		}
		t.mu.Lock()
		t.nextID++
		sp.ID = t.nextID
		if lane == 0 {
			t.nextLane++
			lane = t.nextLane
		}
		sp.Lane = lane
		t.spans = append(t.spans, sp)
		t.mu.Unlock()
		idMap[rs.ID] = sp
		t.emit(Event{Kind: KindSpanStart, TS: rs.Start.UnixNano(), Span: sp.ID, Parent: sp.Parent, Lane: sp.Lane, Name: sp.Name})
		for _, k := range sortedAttrKeys(rs.Attrs) {
			t.emit(Event{Kind: KindAttr, TS: rs.End.UnixNano(), Span: sp.ID, Name: sp.Name, Key: k, Val: rs.Attrs[k]})
		}
		if rs.Cached {
			t.emit(Event{Kind: KindCached, TS: rs.End.UnixNano(), Span: sp.ID, Name: sp.Name})
		}
		if !rs.End.IsZero() {
			t.emit(Event{Kind: KindSpanEnd, TS: rs.End.UnixNano(), Span: sp.ID, Name: sp.Name})
		}
	}
}

// ReplayTrace reconstructs a span tree from a journaled event stream, so
// a feed captured over SSE (or recovered from the WAL) can be rendered
// as a Chrome trace. The trace's replay boundary is set to the last
// event's timestamp; WriteChromeTrace closes still-open spans there
// instead of at the meaningless current wall clock.
func ReplayTrace(events []Event) *Trace {
	t := NewTrace()
	var last time.Time
	byID := map[int64]*Span{}
	for _, ev := range events {
		ts := time.Unix(0, ev.TS)
		if ev.TS != 0 && (last.IsZero() || ts.After(last)) {
			last = ts
		}
		switch ev.Kind {
		case KindSpanStart:
			sp := &Span{tr: t, ID: ev.Span, Parent: ev.Parent, Lane: ev.Lane, Name: ev.Name, Start: ts}
			byID[ev.Span] = sp
			t.mu.Lock()
			if ev.Span > t.nextID {
				t.nextID = ev.Span
			}
			if ev.Lane > t.nextLane {
				t.nextLane = ev.Lane
			}
			if t.start.IsZero() || ts.Before(t.start) {
				t.start = ts
			}
			t.spans = append(t.spans, sp)
			t.mu.Unlock()
		case KindSpanEnd:
			if sp := byID[ev.Span]; sp != nil {
				sp.mu.Lock()
				if sp.end.IsZero() {
					sp.end = ts
				}
				sp.mu.Unlock()
			}
		case KindAttr:
			if sp := byID[ev.Span]; sp != nil {
				sp.SetAttr(ev.Key, ev.Val)
			}
		case KindTag:
			if sp := byID[ev.Span]; sp != nil {
				sp.SetTag(ev.Key, ev.Str)
			}
		case KindCached:
			if sp := byID[ev.Span]; sp != nil {
				sp.MarkCached()
			}
		}
	}
	t.mu.Lock()
	t.replayEnd = last
	t.mu.Unlock()
	return t
}

func sortedAttrKeys(m map[string]int64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
