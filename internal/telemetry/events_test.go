package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// drain collects every buffered event without blocking on new ones.
func drain(t *testing.T, s *Sub) []Event {
	t.Helper()
	var out []Event
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		evs, err := s.NextBatch(ctx)
		cancel()
		if err != nil {
			return out
		}
		out = append(out, evs...)
	}
}

func TestBusPublishesOrderedSpanEvents(t *testing.T) {
	tr := NewTrace()
	bus := NewBus(0)
	tr.AttachBus(bus)
	sub := bus.Subscribe(0, 0)

	ctx := WithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "job")
	root.SetTag("request_id", "req-1")
	_, child := StartSpan(ctx, "parse")
	child.SetAttr("tokens", 42)
	child.End()
	child.End() // second End must not publish again
	root.End()
	bus.Close()

	var evs []Event
	for {
		batch, err := sub.NextBatch(context.Background())
		if err != nil {
			if !errors.Is(err, ErrFeedClosed) {
				t.Fatalf("NextBatch: %v", err)
			}
			break
		}
		evs = append(evs, batch...)
	}
	kinds := make([]string, len(evs))
	for i, ev := range evs {
		kinds[i] = ev.Kind
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.TS == 0 {
			t.Fatalf("event %d has zero timestamp", i)
		}
	}
	want := []string{KindSpanStart, KindTag, KindSpanStart, KindAttr, KindSpanEnd, KindSpanEnd}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	if evs[1].Str != "req-1" || evs[1].Key != "request_id" {
		t.Fatalf("tag event = %+v", evs[1])
	}
	if evs[3].Key != "tokens" || evs[3].Val != 42 || evs[3].Name != "parse" {
		t.Fatalf("attr event = %+v", evs[3])
	}
	if evs[2].Parent != root.ID {
		t.Fatalf("child span_start parent = %d, want %d", evs[2].Parent, root.ID)
	}
}

func TestBusRequestIDStampedOnEnvelope(t *testing.T) {
	bus := NewBus(0)
	bus.SetRequestID("req-9")
	sub := bus.Subscribe(0, 0)
	bus.Publish(Event{Kind: KindJob, Name: "running"})
	evs, err := sub.NextBatch(context.Background())
	if err != nil || len(evs) != 1 {
		t.Fatalf("NextBatch = %v, %v", evs, err)
	}
	if evs[0].RequestID != "req-9" {
		t.Fatalf("RequestID = %q, want req-9", evs[0].RequestID)
	}
}

func TestBusSlowConsumerDropsOldestWithMarker(t *testing.T) {
	bus := NewBus(0)
	sub := bus.Subscribe(0, 4)
	for i := 0; i < 20; i++ {
		bus.Publish(Event{Kind: KindAttr, Key: "i", Val: int64(i)})
	}
	evs, err := sub.NextBatch(context.Background())
	if err != nil {
		t.Fatalf("NextBatch: %v", err)
	}
	if evs[0].Kind != KindDropped || evs[0].Dropped != 16 {
		t.Fatalf("first event = %+v, want dropped marker covering 16", evs[0])
	}
	if len(evs) != 5 {
		t.Fatalf("got %d events, want marker + 4", len(evs))
	}
	for i, ev := range evs[1:] {
		if ev.Seq != int64(17+i) {
			t.Fatalf("kept event %d has seq %d, want %d", i, ev.Seq, 17+i)
		}
	}
	// Publishing never blocked: all 20 publishes already completed above.
	if pub, dropped := bus.Stats(); pub != 20 || dropped != 16 {
		t.Fatalf("Stats = (%d, %d), want (20, 16)", pub, dropped)
	}
}

func TestBusSubscribeBackfillsHistory(t *testing.T) {
	bus := NewBus(0)
	for i := 0; i < 5; i++ {
		bus.Publish(Event{Kind: KindJob, Name: "n"})
	}
	sub := bus.Subscribe(2, 0) // resume after seq 2
	bus.Publish(Event{Kind: KindJob, Name: "live"})
	evs := drain(t, sub)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4 (3 backfilled + 1 live): %+v", len(evs), evs)
	}
	for i, ev := range evs {
		if ev.Seq != int64(3+i) {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, 3+i)
		}
	}
}

func TestBusHistoryEvictionYieldsGapMarker(t *testing.T) {
	bus := NewBus(4)
	for i := 0; i < 10; i++ {
		bus.Publish(Event{Kind: KindJob})
	}
	sub := bus.Subscribe(0, 0)
	evs := drain(t, sub)
	if evs[0].Kind != KindDropped || evs[0].Dropped != 6 {
		t.Fatalf("first = %+v, want gap marker covering 6 evicted events", evs[0])
	}
	if len(evs) != 5 || evs[1].Seq != 7 || evs[4].Seq != 10 {
		t.Fatalf("backfill = %+v, want seqs 7..10", evs[1:])
	}
}

func TestBusPreloadResumesSequence(t *testing.T) {
	journal := []Event{
		{Seq: 1, TS: 100, Kind: KindJob, Name: "pending"},
		{Seq: 2, TS: 200, Kind: KindSpanStart, Span: 1, Name: "job"},
	}
	bus := NewBus(0)
	bus.Preload(journal)
	if got := bus.Publish(Event{Kind: KindJob, Name: "resumed"}); got != 3 {
		t.Fatalf("post-preload publish got seq %d, want 3", got)
	}
	evs := drain(t, bus.Subscribe(0, 0))
	if len(evs) != 3 || evs[0].Seq != 1 || evs[2].Name != "resumed" {
		t.Fatalf("replay+live = %+v", evs)
	}
}

func TestBusSubscribeAfterCloseDrainsHistoryThenEOF(t *testing.T) {
	bus := NewBus(0)
	bus.Publish(Event{Kind: KindJob, Name: "done"})
	bus.Close()
	if bus.Publish(Event{Kind: KindJob}) != 0 {
		t.Fatal("publish after close must be a no-op")
	}
	sub := bus.Subscribe(0, 0)
	evs, err := sub.NextBatch(context.Background())
	if err != nil || len(evs) != 1 || evs[0].Name != "done" {
		t.Fatalf("backfill after close = %+v, %v", evs, err)
	}
	if _, err := sub.NextBatch(context.Background()); !errors.Is(err, ErrFeedClosed) {
		t.Fatalf("err = %v, want ErrFeedClosed", err)
	}
}

func TestImportGraftsRemoteSpansAndPublishes(t *testing.T) {
	tr := NewTrace()
	bus := NewBus(0)
	tr.AttachBus(bus)
	sub := bus.Subscribe(0, 0)

	ctx := WithTrace(context.Background(), tr)
	_, rpc := StartLane(ctx, "rpc[w0]")

	t0 := time.Now()
	tr.Import(rpc, []ImportedSpan{
		{ID: 1, Name: "parse", Start: t0, End: t0.Add(time.Millisecond)},
		{ID: 2, Parent: 1, Name: "execute", Start: t0, End: t0.Add(2 * time.Millisecond),
			Attrs: map[string]int64{"paths": 7}, Cached: true},
	})
	rpc.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want rpc + 2 imported", len(spans))
	}
	var exec *Span
	for _, sp := range spans {
		if sp.Name == "execute" {
			exec = sp
		}
	}
	if exec == nil || !exec.IsCached() || exec.Attrs()["paths"] != 7 {
		t.Fatalf("imported execute span = %+v", exec)
	}
	if exec.Lane != rpc.Lane {
		t.Fatalf("imported span lane = %d, want rpc lane %d", exec.Lane, rpc.Lane)
	}
	if exec.EndTime().IsZero() {
		t.Fatal("imported span must carry its remote end time")
	}
	evs := drain(t, sub)
	var kinds []string
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind)
	}
	want := []string{KindSpanStart, KindSpanStart, KindSpanEnd, KindSpanStart, KindAttr, KindCached, KindSpanEnd, KindSpanEnd}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
}

func TestReplayTraceRebuildsSpansFromEvents(t *testing.T) {
	tr := NewTrace()
	bus := NewBus(0)
	tr.AttachBus(bus)
	sub := bus.Subscribe(0, 0)

	ctx := WithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "job")
	root.SetTag("request_id", "r1")
	_, lane := StartLane(ctx, "submodel[0]")
	lane.SetAttr("paths", 3)
	lane.MarkCached()
	lane.End()
	// root intentionally left open: simulates a crash mid-job.
	bus.Close()

	var evs []Event
	for {
		batch, err := sub.NextBatch(context.Background())
		if err != nil {
			break
		}
		evs = append(evs, batch...)
	}

	rt := ReplayTrace(evs)
	spans := rt.Spans()
	if len(spans) != 2 {
		t.Fatalf("replayed %d spans, want 2", len(spans))
	}
	rRoot, rLane := spans[0], spans[1]
	if rRoot.Name != "job" || rRoot.Tags()["request_id"] != "r1" {
		t.Fatalf("replayed root = %+v tags %v", rRoot, rRoot.Tags())
	}
	if rLane.Attrs()["paths"] != 3 || !rLane.IsCached() || rLane.Parent != rRoot.ID {
		t.Fatalf("replayed lane = %+v", rLane)
	}
	if rt.ReplayEnd().IsZero() {
		t.Fatal("replayed trace must record the replay boundary")
	}

	// The open root span gets a synthetic end at the replay boundary, so
	// the Chrome export has no zero-duration artifacts.
	var buf bytes.Buffer
	if err := rt.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	for _, ev := range out {
		if ev["ph"] != "X" {
			continue
		}
		dur, _ := ev["dur"].(float64)
		if dur <= 0 {
			t.Fatalf("span %v exported with non-positive duration %v", ev["name"], dur)
		}
	}
}

func TestReplayTraceChromeEndIsBoundedByLastEvent(t *testing.T) {
	base := time.Now().Add(-time.Hour) // far in the past: wall clock must not leak in
	evs := []Event{
		{Seq: 1, TS: base.UnixNano(), Kind: KindSpanStart, Span: 1, Lane: 1, Name: "job"},
		{Seq: 2, TS: base.Add(time.Second).UnixNano(), Kind: KindSpanStart, Span: 2, Parent: 1, Lane: 1, Name: "execute"},
		{Seq: 3, TS: base.Add(2 * time.Second).UnixNano(), Kind: KindSpanEnd, Span: 2, Name: "execute"},
	}
	rt := ReplayTrace(evs)
	var buf bytes.Buffer
	if err := rt.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	for _, ev := range out {
		if ev["ph"] != "X" || ev["name"] != "job" {
			continue
		}
		dur, _ := ev["dur"].(float64)
		// Synthetic end = last event (base+2s), so duration is exactly 2s in
		// microseconds — not an hour.
		if dur <= 0 || dur > 2.1e6 {
			t.Fatalf("open span duration = %vµs, want ~2e6 (bounded by replay end)", dur)
		}
	}
}

func TestLintPrometheusRejectsInterleavedSeries(t *testing.T) {
	bad := "# HELP m jobs\n# TYPE m counter\n" +
		"m{technique=\"O3\"} 1\n" +
		"m{technique=\"original\"} 2\n" +
		"m{technique=\"O3\"} 3\n"
	if err := LintPrometheus(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "interleave") {
		t.Fatalf("err = %v, want interleave rejection", err)
	}

	// Histogram series are contiguous across their _bucket/_sum/_count
	// lines; a second series following a complete first one is legal.
	good := "# HELP h lat\n# TYPE h histogram\n" +
		"h_bucket{t=\"a\",le=\"1\"} 1\nh_bucket{t=\"a\",le=\"+Inf\"} 1\nh_sum{t=\"a\"} 0.5\nh_count{t=\"a\"} 1\n" +
		"h_bucket{t=\"b\",le=\"1\"} 2\nh_bucket{t=\"b\",le=\"+Inf\"} 2\nh_sum{t=\"b\"} 0.7\nh_count{t=\"b\"} 2\n"
	if err := LintPrometheus(strings.NewReader(good)); err != nil {
		t.Fatalf("contiguous histogram series rejected: %v", err)
	}

	badHist := "# HELP h lat\n# TYPE h histogram\n" +
		"h_bucket{t=\"a\",le=\"+Inf\"} 1\nh_sum{t=\"a\"} 0.5\n" +
		"h_bucket{t=\"b\",le=\"+Inf\"} 2\nh_sum{t=\"b\"} 0.7\nh_count{t=\"b\"} 2\n" +
		"h_count{t=\"a\"} 1\n"
	if err := LintPrometheus(strings.NewReader(badHist)); err == nil || !strings.Contains(err.Error(), "interleave") {
		t.Fatalf("err = %v, want interleave rejection for split histogram series", err)
	}
}
