package telemetry

// Chrome trace-event export: the span tree rendered in the Trace Event
// Format (complete "X" events), loadable in Perfetto (ui.perfetto.dev)
// and chrome://tracing. The file is a JSON array with exactly one event
// per line — line-delimited for streaming consumers, still a valid JSON
// document for strict parsers. Lanes map to trace "threads": spans on one
// lane nest by time containment; each parallel submodel worker gets its
// own lane. Cached (memoized-replay) spans carry "cached":1 in their
// args, so a reused submodel shows as an explicit zero-cost slice rather
// than a gap.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one Trace Event Format record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds since trace start
	Dur  *float64       `json:"dur,omitempty"` // microseconds
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace. Spans still open at export time are
// closed at the current instant — except on a trace rebuilt from a
// journaled event stream (ReplayTrace), where the wall clock is
// meaningless: there, still-open spans are closed at the replay boundary
// (the last journaled event's timestamp), with a 1µs floor so a span
// whose end was lost to a crash still renders as a visible slice in
// Perfetto rather than a zero-duration artifact.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	now := time.Now()
	if re := t.ReplayEnd(); !re.IsZero() {
		now = re
	}

	events := make([]chromeEvent, 0, len(spans)+2)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "p4assert"},
	})
	lanes := map[int64]bool{}
	for _, sp := range spans {
		if !lanes[sp.Lane] {
			lanes[sp.Lane] = true
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: sp.Lane,
				Args: map[string]any{"name": fmt.Sprintf("lane %d", sp.Lane)},
			})
		}
		end := sp.EndTime()
		if end.IsZero() {
			end = now
			if !end.After(sp.Start) {
				end = sp.Start.Add(time.Microsecond)
			}
		}
		dur := float64(end.Sub(sp.Start)) / float64(time.Microsecond)
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  "p4assert",
			Ph:   "X",
			TS:   float64(sp.Start.Sub(t.start)) / float64(time.Microsecond),
			Dur:  &dur,
			PID:  1,
			TID:  sp.Lane,
		}
		attrs, tags := sp.attrsCopy(), sp.Tags()
		if len(attrs) != 0 || len(tags) != 0 || sp.IsCached() {
			args := map[string]any{}
			keys := make([]string, 0, len(attrs))
			for k := range attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				args[k] = attrs[k]
			}
			for k, v := range tags {
				args[k] = v
			}
			if sp.IsCached() {
				args["cached"] = 1
			}
			ev.Args = args
		}
		events = append(events, ev)
	}

	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(data, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
