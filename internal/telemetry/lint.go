package telemetry

// A small Prometheus text-exposition linter, used by the format tests
// (this package and the service's /v1/metrics test) to keep the scrape
// surface well-formed and the metric names stable. It checks the subset
// of the format this package emits: HELP/TYPE comment ordering, sample
// name syntax, samples belonging to a declared family, histogram bucket
// monotonicity, the mandatory +Inf bucket matching _count, and series
// contiguity — all samples of one labeled series must be adjacent within
// their family, since scrapers are allowed to treat a re-appearing
// series as a duplicate.

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|NaN)$`)

// LintPrometheus validates Prometheus text exposition read from r,
// returning the first violation found.
func LintPrometheus(r io.Reader) error {
	type histState struct {
		lastCum  map[string]int64 // base label set -> last cumulative bucket
		infCum   map[string]int64
		count    map[string]int64
		hasCount map[string]bool
	}
	types := map[string]string{}
	hists := map[string]*histState{}
	curSeries := map[string]string{}           // family -> series currently being emitted
	seenSeries := map[string]map[string]bool{} // family -> series already closed out

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", n, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE %q", n, line)
				}
				name, kind := fields[2], fields[3]
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", n, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", n, kind)
				}
				types[name] = kind
				if kind == "histogram" {
					hists[name] = &histState{
						lastCum:  map[string]int64{},
						infCum:   map[string]int64{},
						count:    map[string]int64{},
						hasCount: map[string]bool{},
					}
				}
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", n, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		famKind, known := types[name]
		if !known {
			famKind, known = types[base]
		}
		if !known {
			return fmt.Errorf("line %d: sample %s has no TYPE declaration", n, name)
		}
		famName := name
		if _, direct := types[name]; !direct {
			famName = base
		}
		// A histogram series spans its _bucket/_sum/_count lines, so key
		// on the label set with le removed; other kinds key on the label
		// set as rendered.
		seriesKey, _, _ := extractLE(labels)
		if famKind != "histogram" {
			seriesKey = labels
		}
		if cur, active := curSeries[famName]; !active || cur != seriesKey {
			if seenSeries[famName][seriesKey] {
				return fmt.Errorf("line %d: series %s%s interleaves out of order", n, famName, seriesKey)
			}
			if seenSeries[famName] == nil {
				seenSeries[famName] = map[string]bool{}
			}
			seenSeries[famName][seriesKey] = true
			curSeries[famName] = seriesKey
		}
		if famKind != "histogram" {
			continue
		}
		h := hists[base]
		stripped, le, hasLE := extractLE(labels)
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if !hasLE {
				return fmt.Errorf("line %d: histogram bucket without le label", n)
			}
			cum, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: non-integer bucket count %q", n, valStr)
			}
			if cum < h.lastCum[stripped] {
				return fmt.Errorf("line %d: bucket counts not cumulative for %s%s", n, base, stripped)
			}
			h.lastCum[stripped] = cum
			if le == "+Inf" {
				h.infCum[stripped] = cum
			}
		case strings.HasSuffix(name, "_count"):
			cnt, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: non-integer count %q", n, valStr)
			}
			h.count[stripped] = cnt
			h.hasCount[stripped] = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name, h := range hists {
		for series, inf := range h.infCum {
			if !h.hasCount[series] {
				return fmt.Errorf("histogram %s%s has buckets but no _count", name, series)
			}
			if h.count[series] != inf {
				return fmt.Errorf("histogram %s%s: +Inf bucket %d != count %d", name, series, inf, h.count[series])
			}
		}
		for series := range h.hasCount {
			if _, ok := h.infCum[series]; !ok {
				return fmt.Errorf("histogram %s%s is missing its +Inf bucket", name, series)
			}
		}
	}
	return nil
}

// extractLE removes the le label from a rendered label set, returning the
// remaining canonical set and the le value.
func extractLE(labels string) (stripped, le string, ok bool) {
	if labels == "" {
		return "", "", false
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	if inner == "" {
		return "", "", false
	}
	var kept []string
	for _, pair := range splitLabelPairs(inner) {
		if strings.HasPrefix(pair, "le=") {
			le = strings.Trim(strings.TrimPrefix(pair, "le="), `"`)
			ok = true
			continue
		}
		kept = append(kept, pair)
	}
	if len(kept) == 0 {
		return "", le, ok
	}
	return "{" + strings.Join(kept, ",") + "}", le, ok
}

// splitLabelPairs splits k="v" pairs on commas outside quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
