package telemetry

// Contention hammer tests: meaningful only under -race (the CI focused
// race pass runs this package with -race -count=4), but cheap enough to
// run everywhere.

import (
	"context"
	"io"
	"sync"
	"testing"
)

// TestSpanMutationVsExportHammer drives concurrent SetAttr/SetTag/
// MarkCached/End against Trace.Spans() and the Chrome exporter.
func TestSpanMutationVsExportHammer(t *testing.T) {
	tr := NewTrace()
	bus := NewBus(256)
	tr.AttachBus(bus)
	ctx := WithTrace(context.Background(), tr)

	const workers = 8
	const iters = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, sp := StartLane(ctx, "lane")
				sp.SetAttr("paths", int64(i))
				sp.SetAttr("forks", int64(w))
				sp.SetTag("request_id", "r")
				if i%3 == 0 {
					sp.MarkCached()
				}
				sp.End()
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/8; i++ {
				for _, sp := range tr.Spans() {
					sp.Attrs()
					sp.Tags()
					sp.IsCached()
					sp.Duration()
				}
				if err := tr.WriteChromeTrace(io.Discard); err != nil {
					t.Errorf("WriteChromeTrace: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != workers*iters {
		t.Fatalf("recorded %d spans, want %d", got, workers*iters)
	}
}

// TestBusSubscribeUnsubscribeTeardownRace churns subscribers on and off
// a bus while publishers run and the trace tears down (Close).
func TestBusSubscribeUnsubscribeTeardownRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		bus := NewBus(64)
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					bus.Publish(Event{Kind: KindAttr, Key: "i", Val: int64(i)})
				}
			}(p)
		}
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					sub := bus.Subscribe(int64(i), 8)
					ctx, cancel := context.WithCancel(context.Background())
					if i%2 == 0 {
						cancel() // NextBatch must bail out on a dead context
					}
					_, _ = sub.NextBatch(ctx)
					cancel()
					sub.Cancel()
				}
			}(c)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			bus.Close()
		}()
		wg.Wait()

		// After teardown the stream stays well-formed: a late subscriber
		// still drains history and then sees EOF.
		sub := bus.Subscribe(0, 0)
		for {
			if _, err := sub.NextBatch(context.Background()); err != nil {
				break
			}
		}
	}
}
