package telemetry

import (
	"sync"
	"time"
)

// HistBuckets is the number of exponential latency buckets: bucket i
// counts samples with latency < 1ms·2^i, the last bucket is the overflow
// (+Inf). 1ms·2^20 ≈ 17.5 min, comfortably past any sane job timeout.
const HistBuckets = 21

// Histogram is an exponential-bucket latency histogram. The zero value is
// ready to use; it is safe for concurrent observation.
type Histogram struct {
	mu     sync.Mutex
	counts [HistBuckets]int64
	count  int64
	sum    time.Duration
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for bound := time.Millisecond; i < HistBuckets-1 && d >= bound; bound *= 2 {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// HistogramSnapshot is the wire form of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// SumMS is the total observed latency in milliseconds.
	SumMS int64 `json:"sum_ms"`
	// Buckets lists cumulative counts per upper bound, Prometheus-style.
	Buckets []HistogramBucket `json:"buckets"`
}

// HistogramBucket is one cumulative bucket; LeMS is its inclusive upper
// bound in milliseconds, -1 for the overflow (+Inf) bucket.
type HistogramBucket struct {
	LeMS  int64 `json:"le_ms"`
	Count int64 `json:"count"`
}

// Snapshot renders the histogram. Empty buckets beyond the last occupied
// one are trimmed, except the overflow marker when it is occupied.
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts, count, sum := h.export()
	s := HistogramSnapshot{Count: count, SumMS: sum.Milliseconds()}
	cum := int64(0)
	bound := int64(1)
	for i := 0; i < HistBuckets; i++ {
		cum += counts[i]
		le := bound
		if i == HistBuckets-1 {
			le = -1
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LeMS: le, Count: cum})
		bound *= 2
	}
	// Trim the all-cumulative tail: buckets after the first one that
	// already covers every sample carry no information.
	for len(s.Buckets) > 1 && s.Buckets[len(s.Buckets)-2].Count == count {
		s.Buckets = s.Buckets[:len(s.Buckets)-1]
	}
	return s
}

// export returns a consistent copy of the raw counters: the untrimmed
// per-bucket counts, the sample count and the duration sum. The
// Prometheus writer uses it so every scrape sees the full, stable bucket
// set (a trimmed set would change shape between scrapes).
func (h *Histogram) export() (counts [HistBuckets]int64, count int64, sum time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counts, h.count, h.sum
}
