// Package telemetry is the pipeline's observability layer: a
// zero-dependency metric registry (atomic counters, gauges and the
// exponential-bucket latency histogram), a span tree threaded through
// context.Context, a Prometheus text-exposition writer, and a Chrome
// trace-event exporter.
//
// The paper's contribution is *feasible time*, so the verifier must be
// able to say where its time goes: every pipeline stage (parse →
// typecheck → translate → slice → opt → submodel split → symbolic
// execution → solver) opens a named span, and the executor attributes its
// work (paths, forks, frontier depth, assertion checks, solver queries,
// bit-blast sizes) to counters. Consumers:
//
//   - p4served exports the registry at GET /v1/metrics in Prometheus
//     text exposition format;
//   - p4verify -trace writes the span tree as a Chrome trace-event file
//     loadable in Perfetto (ui.perfetto.dev);
//   - core.Report carries a Telemetry section (per-stage wall time +
//     work counters) on the report wire format.
//
// Everything here is safe for concurrent use; spans tolerate the
// parallel submodel worker pool, and a nil *Span or absent Trace in the
// context degrades every operation to a no-op so un-instrumented callers
// pay only a context lookup.
package telemetry

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative for the
// Prometheus counter contract; this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated instantaneous value. The zero value is
// ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Label is one metric dimension. Registry series are keyed by the full
// (name, labels) pair, Prometheus-style.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }
