package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestChromeTraceWellFormed checks the exporter's two format contracts:
// the whole file is a valid JSON array of trace events, and every event
// sits alone on its own line (the line-delimited form streaming
// consumers rely on).
func TestChromeTraceWellFormed(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "execute")
	_, sub := StartLane(ctx, "submodel[0]")
	sub.SetAttr("paths", 7)
	sub.End()
	_, cached := StartLane(ctx, "submodel[1]")
	cached.MarkCached()
	cached.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	var events []map[string]any
	if err := json.Unmarshal([]byte(out), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, out)
	}

	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "[" || lines[len(lines)-1] != "]" {
		t.Fatalf("trace not bracketed one-event-per-line:\n%s", out)
	}
	for _, l := range lines[1 : len(lines)-1] {
		var ev map[string]any
		if err := json.Unmarshal([]byte(strings.TrimSuffix(l, ",")), &ev); err != nil {
			t.Fatalf("line %q is not one JSON event: %v", l, err)
		}
	}

	var sawCached, sawAttr bool
	spans := 0
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			continue
		case "X":
			spans++
		default:
			t.Fatalf("unexpected event phase %v", ev["ph"])
		}
		if _, ok := ev["dur"]; !ok {
			t.Fatalf("complete event missing dur: %v", ev)
		}
		if args, ok := ev["args"].(map[string]any); ok {
			if args["cached"] == float64(1) {
				sawCached = true
			}
			if args["paths"] == float64(7) {
				sawAttr = true
			}
		}
	}
	if spans != 3 {
		t.Fatalf("%d span events, want 3", spans)
	}
	if !sawCached {
		t.Fatal("cached submodel span lost its cached marker")
	}
	if !sawAttr {
		t.Fatal("span attribute lost in export")
	}
}

// TestChromeTraceClosesOpenSpans: spans never ended still export with a
// duration up to the export instant, not a hole.
func TestChromeTraceClosesOpenSpans(t *testing.T) {
	tr := NewTrace()
	_, sp := StartSpan(WithTrace(context.Background(), tr), "open")
	time.Sleep(2 * time.Millisecond)

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev["name"] == "open" {
			if d, _ := ev["dur"].(float64); d <= 0 {
				t.Fatalf("open span exported with dur %v", ev["dur"])
			}
			return
		}
	}
	t.Fatal("open span missing from export")
	_ = sp
}

func TestLintPrometheusAcceptsRegistryOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("p4_jobs_total", "jobs").Add(3)
	r.Gauge("p4_queue_depth", "depth").Set(1)
	h := r.Histogram("p4_stage_duration_seconds", "stage time", L("stage", "execute"))
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Minute) // lands in +Inf
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := LintPrometheus(strings.NewReader(b.String())); err != nil {
		t.Fatalf("registry output fails lint: %v\n%s", err, b.String())
	}
}

func TestLintPrometheusRejectsMalformed(t *testing.T) {
	cases := []string{
		"p4_orphan_total 1\n",      // sample without TYPE
		"# TYPE m counter\nm{ 1\n", // malformed sample
		"# TYPE m histogram\nm_bucket{le=\"1\"} 2\nm_bucket{le=\"+Inf\"} 1\nm_count 1\n", // non-cumulative
	}
	for _, c := range cases {
		if err := LintPrometheus(strings.NewReader(c)); err == nil {
			t.Fatalf("lint accepted malformed exposition:\n%s", c)
		}
	}
}
