package telemetry

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace collects the span tree of one verification run. Create with
// NewTrace, attach to a context with WithTrace, and open spans with
// StartSpan/StartLane. It is safe for concurrent use by the parallel
// submodel worker pool.
type Trace struct {
	start time.Time

	// bus, when attached, receives an Event for every span transition.
	bus atomic.Pointer[Bus]

	mu       sync.Mutex
	nextID   int64
	nextLane int64
	spans    []*Span
	// replayEnd, when non-zero, marks the last known instant of a trace
	// rebuilt from a journaled event stream (see ReplayTrace).
	replayEnd time.Time
}

// AttachBus routes every span transition on the trace to b as Events.
// Attach before spans start; a trace without a bus publishes nothing.
func (t *Trace) AttachBus(b *Bus) { t.bus.Store(b) }

// Bus returns the attached event bus, or nil.
func (t *Trace) Bus() *Bus { return t.bus.Load() }

// emit publishes ev if a bus is attached; otherwise it is a no-op.
func (t *Trace) emit(ev Event) {
	if t == nil {
		return
	}
	if b := t.bus.Load(); b != nil {
		b.Publish(ev)
	}
}

// StartTime returns the instant the trace was anchored at.
func (t *Trace) StartTime() time.Time { return t.start }

// ReplayEnd returns the replay boundary (zero for live traces).
func (t *Trace) ReplayEnd() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.replayEnd
}

// NewTrace returns an empty trace anchored at the current time.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Span is one named, timed region of the pipeline. A nil *Span is a
// valid no-op receiver for every method, so instrumented code needs no
// "is telemetry on" branches.
type Span struct {
	tr *Trace

	// ID and Parent identify the span within its trace (Parent 0 = root).
	ID     int64
	Parent int64
	// Lane is the span's display track in the trace viewer: spans on one
	// lane nest by time containment, concurrent workers get fresh lanes.
	Lane int64
	Name string

	Start time.Time

	mu sync.Mutex
	// end is zero until the span ends (read via EndTime/Duration).
	end time.Time
	// cached marks a zero-cost span replayed from a memoization tier
	// rather than executed (the incremental engine's reused submodels).
	cached bool
	attrs  map[string]int64
	tags   map[string]string
}

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// WithTrace returns a context carrying tr; StartSpan on the result (and
// its descendants) records into tr.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey, tr)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// SpanFrom returns the innermost span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// StartSpan opens a span named name under the context's current span, on
// the same lane, and returns a context carrying the new span. Without a
// trace in ctx it returns (ctx, nil) — and a nil span is a no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return start(ctx, name, false)
}

// StartLane is StartSpan on a fresh display lane: use it for the first
// span of a concurrent worker (parallel submodels), whose duration
// overlaps its siblings'.
func StartLane(ctx context.Context, name string) (context.Context, *Span) {
	return start(ctx, name, true)
}

func start(ctx context.Context, name string, newLane bool) (context.Context, *Span) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	parent := SpanFrom(ctx)
	sp := &Span{tr: tr, Name: name, Start: time.Now()}
	if parent != nil {
		sp.Parent = parent.ID
		sp.Lane = parent.Lane
	}
	tr.mu.Lock()
	tr.nextID++
	sp.ID = tr.nextID
	if newLane || parent == nil {
		tr.nextLane++
		sp.Lane = tr.nextLane
	}
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	tr.emit(Event{Kind: KindSpanStart, TS: sp.Start.UnixNano(), Span: sp.ID, Parent: sp.Parent, Lane: sp.Lane, Name: name})
	return context.WithValue(ctx, spanKey, sp), sp
}

// End closes the span at the current time. Ending twice keeps the first
// end time; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	ended := false
	if s.end.IsZero() {
		s.end = time.Now()
		ended = true
	}
	end := s.end
	s.mu.Unlock()
	if ended {
		s.tr.emit(Event{Kind: KindSpanEnd, TS: end.UnixNano(), Span: s.ID, Name: s.Name})
	}
}

// EndTime returns when the span ended (zero if still open).
func (s *Span) EndTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// SetAttr attaches a named integer attribute (a work counter) to the
// span. No-op on a nil span.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]int64{}
	}
	s.attrs[key] = v
	s.mu.Unlock()
	s.tr.emit(Event{Kind: KindAttr, Span: s.ID, Name: s.Name, Key: key, Val: v})
}

// SetTag attaches a named string attribute (a correlation label such as
// a request ID) to the span. No-op on a nil span.
func (s *Span) SetTag(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.tags == nil {
		s.tags = map[string]string{}
	}
	s.tags[key] = v
	s.mu.Unlock()
	s.tr.emit(Event{Kind: KindTag, Span: s.ID, Name: s.Name, Key: key, Str: v})
}

// Tags snapshots the span's string attributes (nil when empty).
func (s *Span) Tags() map[string]string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tags) == 0 {
		return nil
	}
	cp := make(map[string]string, len(s.tags))
	for k, v := range s.tags {
		cp[k] = v
	}
	return cp
}

// Attrs snapshots the span's integer attributes (nil when empty).
func (s *Span) Attrs() map[string]int64 {
	if s == nil {
		return nil
	}
	return s.attrsCopy()
}

// MarkCached flags the span as a zero-cost memoized replay. No-op on a
// nil span.
func (s *Span) MarkCached() {
	if s == nil {
		return
	}
	s.mu.Lock()
	first := !s.cached
	s.cached = true
	s.mu.Unlock()
	if first {
		s.tr.emit(Event{Kind: KindCached, Span: s.ID, Name: s.Name})
	}
}

// IsCached reports whether the span was marked as a memoized replay.
func (s *Span) IsCached() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cached
}

// Duration returns the span's wall time (zero if un-ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.Start)
}

// attrsCopy snapshots the attribute map (nil when empty).
func (s *Span) attrsCopy() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.attrs) == 0 {
		return nil
	}
	cp := make(map[string]int64, len(s.attrs))
	for k, v := range s.attrs {
		cp[k] = v
	}
	return cp
}

// Spans returns the trace's spans sorted by start time (ties by ID).
// Un-ended spans are included with a zero EndTime.
func (t *Trace) Spans() []*Span {
	t.mu.Lock()
	out := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Find returns the first span with the given name, or nil.
func (t *Trace) Find(name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.spans {
		if sp.Name == name {
			return sp
		}
	}
	return nil
}
