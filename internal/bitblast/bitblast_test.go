package bitblast

import (
	"math/rand"
	"testing"

	"p4assert/internal/bv"
	"p4assert/internal/sat"
)

// checkFormula asserts e (width 1) and returns (sat, model).
func checkFormula(t *testing.T, c *bv.Context, e *bv.Expr) (bool, map[string]uint64) {
	t.Helper()
	s := sat.New()
	b := New(s)
	b.AssertTrue(e)
	if !s.Solve() {
		return false, nil
	}
	return true, b.Model()
}

func TestSimpleEquality(t *testing.T) {
	c := bv.NewContext()
	x := c.Var("x", 16)
	sat1, m := checkFormula(t, c, c.Eq(x, c.Const(16, 0xbeef)))
	if !sat1 {
		t.Fatal("x == 0xbeef should be SAT")
	}
	if m["x"] != 0xbeef {
		t.Fatalf("model x = %#x, want 0xbeef", m["x"])
	}
}

func TestContradiction(t *testing.T) {
	c := bv.NewContext()
	x := c.Var("x", 8)
	e := c.And(c.Eq(x, c.Const(8, 1)), c.Eq(x, c.Const(8, 2)))
	if ok, _ := checkFormula(t, c, e); ok {
		t.Fatal("x==1 && x==2 should be UNSAT")
	}
}

func TestArithmeticWitness(t *testing.T) {
	c := bv.NewContext()
	x := c.Var("x", 8)
	y := c.Var("y", 8)
	// x + y == 10 && x * y == 21  →  {3,7}
	e := c.And(
		c.Eq(c.Add(x, y), c.Const(8, 10)),
		c.Eq(c.Mul(x, y), c.Const(8, 21)),
	)
	ok, m := checkFormula(t, c, e)
	if !ok {
		t.Fatal("should be SAT")
	}
	if (m["x"]+m["y"])&0xff != 10 || (m["x"]*m["y"])&0xff != 21 {
		t.Fatalf("model {x:%d y:%d} does not satisfy constraints", m["x"], m["y"])
	}
}

func TestOverflowSemantics(t *testing.T) {
	c := bv.NewContext()
	x := c.Var("x", 8)
	// x + 1 == 0 has the unique solution 255 (wraparound).
	ok, m := checkFormula(t, c, c.Eq(c.Add(x, c.Const(8, 1)), c.Const(8, 0)))
	if !ok || m["x"] != 255 {
		t.Fatalf("got sat=%v x=%d, want sat with x=255", ok, m["x"])
	}
}

func TestDivisionByZeroSemantics(t *testing.T) {
	c := bv.NewContext()
	x := c.Var("x", 8)
	// x / 0 == 255 must hold for all x (SMT-LIB), so its negation is UNSAT.
	e := c.Ne(c.UDiv(x, c.Const(8, 0)), c.Const(8, 0xff))
	if ok, _ := checkFormula(t, c, e); ok {
		t.Fatal("x/0 != 255 should be UNSAT")
	}
	// x % 0 == x must hold for all x.
	e2 := c.Ne(c.UMod(x, c.Const(8, 0)), x)
	if ok, _ := checkFormula(t, c, e2); ok {
		t.Fatal("x%0 != x should be UNSAT")
	}
}

func TestUnsignedComparison(t *testing.T) {
	c := bv.NewContext()
	x := c.Var("x", 4)
	// x < 3 && x > 1  →  x == 2
	e := c.And(c.Ult(x, c.Const(4, 3)), c.Ugt(x, c.Const(4, 1)))
	ok, m := checkFormula(t, c, e)
	if !ok || m["x"] != 2 {
		t.Fatalf("got sat=%v x=%d, want x=2", ok, m["x"])
	}
}

func TestShiftSemantics(t *testing.T) {
	c := bv.NewContext()
	x := c.Var("x", 8)
	sh := c.Var("sh", 8)
	// (x << sh) == 0x80 && x == 1  →  sh == 7
	e := c.And(
		c.Eq(c.Shl(x, sh), c.Const(8, 0x80)),
		c.Eq(x, c.Const(8, 1)),
	)
	ok, m := checkFormula(t, c, e)
	if !ok || m["sh"] != 7 {
		t.Fatalf("got sat=%v sh=%d, want sh=7", ok, m["sh"])
	}
	// Shift ≥ width zeroes: x<<9 != 0 is UNSAT.
	e2 := c.Ne(c.Shl(x, c.Const(8, 9)), c.Const(8, 0))
	if ok, _ := checkFormula(t, c, e2); ok {
		t.Fatal("x<<9 != 0 should be UNSAT at width 8")
	}
}

func TestConcatExtract(t *testing.T) {
	c := bv.NewContext()
	hi := c.Var("hi", 8)
	lo := c.Var("lo", 8)
	cc := c.Concat(hi, lo)
	e := c.And(
		c.Eq(cc, c.Const(16, 0xab12)),
		c.True(),
	)
	ok, m := checkFormula(t, c, e)
	if !ok || m["hi"] != 0xab || m["lo"] != 0x12 {
		t.Fatalf("concat model wrong: %v", m)
	}
}

func TestIteBlasting(t *testing.T) {
	c := bv.NewContext()
	p := c.Var("p", 1)
	x := c.Var("x", 8)
	e := c.And(
		c.Eq(c.Ite(p, x, c.Const(8, 5)), c.Const(8, 9)),
		c.Eq(x, c.Const(8, 9)),
	)
	ok, m := checkFormula(t, c, e)
	if !ok {
		t.Fatal("should be SAT")
	}
	if m["p"] != 1 {
		t.Fatalf("p must be 1 to select x, got %d", m["p"])
	}
}

// randBool builds a random width-1 formula over 8-bit vars a, b.
func randBoolExpr(c *bv.Context, r *rand.Rand, depth int) *bv.Expr {
	mkInt := func() *bv.Expr {
		var e *bv.Expr
		switch r.Intn(3) {
		case 0:
			e = c.Var("a", 8)
		case 1:
			e = c.Var("b", 8)
		default:
			e = c.Const(8, uint64(r.Intn(256)))
		}
		for i := 0; i < r.Intn(3); i++ {
			o := c.Var("b", 8)
			switch r.Intn(7) {
			case 0:
				e = c.Add(e, o)
			case 1:
				e = c.Sub(e, o)
			case 2:
				e = c.Mul(e, o)
			case 3:
				e = c.And(e, o)
			case 4:
				e = c.Xor(e, o)
			case 5:
				e = c.UDiv(e, o)
			default:
				e = c.UMod(e, o)
			}
		}
		return e
	}
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return c.Eq(mkInt(), mkInt())
		case 1:
			return c.Ult(mkInt(), mkInt())
		default:
			return c.Ule(mkInt(), mkInt())
		}
	}
	a := randBoolExpr(c, r, depth-1)
	b2 := randBoolExpr(c, r, depth-1)
	switch r.Intn(3) {
	case 0:
		return c.And(a, b2)
	case 1:
		return c.Or(a, b2)
	default:
		return c.Not(a)
	}
}

// TestRandomFormulaeAgainstEval is the bit-blaster's core property: the SAT
// verdict must agree with brute-force evaluation over both 8-bit variables,
// and any model returned must actually evaluate to true.
func TestRandomFormulaeAgainstEval(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 120; iter++ {
		c := bv.NewContext()
		e := randBoolExpr(c, r, 2)
		// Brute-force over a, b (256×256 = 64k evals of a small DAG).
		want := false
		env := map[string]uint64{}
		for a := uint64(0); a < 256 && !want; a++ {
			for b2 := uint64(0); b2 < 256; b2++ {
				env["a"], env["b"] = a, b2
				if bv.Eval(e, env) == 1 {
					want = true
					break
				}
			}
		}
		s := sat.New()
		bl := New(s)
		bl.AssertTrue(e)
		got := s.Solve()
		if got != want {
			t.Fatalf("iter %d: blaster=%v brute=%v for %s", iter, got, want, e)
		}
		if got {
			m := bl.Model()
			if bv.Eval(e, m) != 1 {
				t.Fatalf("iter %d: model %v does not satisfy %s", iter, m, e)
			}
		}
	}
}

// TestWideOperations exercises 48- and 64-bit circuits (Ethernet-address
// sized and maximal widths).
func TestWideOperations(t *testing.T) {
	c := bv.NewContext()
	mac := c.Var("mac", 48)
	ok, m := checkFormula(t, c, c.Eq(mac, c.Const(48, 0x0102030405ff)))
	if !ok || m["mac"] != 0x0102030405ff {
		t.Fatalf("48-bit equality failed: %v", m)
	}
	c2 := bv.NewContext()
	x := c2.Var("x", 64)
	e := c2.Eq(c2.Add(x, c2.Const(64, 1)), c2.Const(64, 0))
	s := sat.New()
	bl := New(s)
	bl.AssertTrue(e)
	if !s.Solve() {
		t.Fatal("64-bit wraparound should be SAT")
	}
	if bl.Model()["x"] != ^uint64(0) {
		t.Fatalf("64-bit model = %#x", bl.Model()["x"])
	}
}

func TestSharedSubexpressionReuse(t *testing.T) {
	c := bv.NewContext()
	x := c.Var("x", 16)
	sum := c.Add(x, c.Const(16, 3))
	e := c.And(c.Ult(sum, c.Const(16, 100)), c.Ugt(sum, c.Const(16, 50)))
	s := sat.New()
	bl := New(s)
	bl.AssertTrue(e)
	if !s.Solve() {
		t.Fatal("should be SAT")
	}
	v := (bl.Model()["x"] + 3) & 0xffff
	if v >= 100 || v <= 50 {
		t.Fatalf("model violates range: x+3 = %d", v)
	}
}

func TestNonPowerOfTwoWidthShift(t *testing.T) {
	// Width 5: shifting by 5 or 6 must zero even though 2^3 > 5.
	c := bv.NewContext()
	x := c.Var("x", 5)
	e := c.And(
		c.Ne(c.Lshr(x, c.Const(5, 5)), c.Const(5, 0)),
		c.True(),
	)
	if ok, _ := checkFormula(t, c, e); ok {
		t.Fatal("x>>5 != 0 should be UNSAT at width 5")
	}
}
