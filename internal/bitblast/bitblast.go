// Package bitblast lowers bitvector formulas (internal/bv) to CNF over a
// CDCL SAT solver (internal/sat) using the standard Tseitin construction:
// ripple-carry adders, shift-add multipliers, restoring dividers, barrel
// shifters and bitwise comparators.
//
// Together with internal/sat it fills the role of the SMT backend that KLEE
// delegates to in the paper's prototype: deciding path-condition
// satisfiability and producing concrete counterexample models.
package bitblast

import (
	"p4assert/internal/bv"
	"p4assert/internal/sat"
)

// Blaster translates expressions into SAT literals. One Blaster owns one
// sat.Solver; translated nodes are cached so shared DAG nodes cost one
// circuit.
type Blaster struct {
	s       *sat.Solver
	bits    map[*bv.Expr][]sat.Lit
	varBits map[string][]sat.Lit
	lTrue   sat.Lit
}

// New returns a Blaster over solver s.
func New(s *sat.Solver) *Blaster {
	b := &Blaster{
		s:       s,
		bits:    make(map[*bv.Expr][]sat.Lit),
		varBits: make(map[string][]sat.Lit),
	}
	v := s.NewVar()
	b.lTrue = sat.MkLit(v, false)
	s.AddClause(b.lTrue)
	return b
}

// Solver returns the underlying SAT solver.
func (b *Blaster) Solver() *sat.Solver { return b.s }

func (b *Blaster) lFalse() sat.Lit { return b.lTrue.Not() }

func (b *Blaster) fresh() sat.Lit { return sat.MkLit(b.s.NewVar(), false) }

// constLit returns the literal for a known truth value.
func (b *Blaster) constLit(v bool) sat.Lit {
	if v {
		return b.lTrue
	}
	return b.lFalse()
}

// gateAnd returns a literal equivalent to the conjunction of ins.
func (b *Blaster) gateAnd(ins ...sat.Lit) sat.Lit {
	lits := ins[:0:0]
	for _, l := range ins {
		if l == b.lFalse() {
			return b.lFalse()
		}
		if l != b.lTrue {
			lits = append(lits, l)
		}
	}
	switch len(lits) {
	case 0:
		return b.lTrue
	case 1:
		return lits[0]
	}
	o := b.fresh()
	long := make([]sat.Lit, 0, len(lits)+1)
	for _, l := range lits {
		b.s.AddClause(o.Not(), l)
		long = append(long, l.Not())
	}
	long = append(long, o)
	b.s.AddClause(long...)
	return o
}

// gateOr returns a literal equivalent to the disjunction of ins.
func (b *Blaster) gateOr(ins ...sat.Lit) sat.Lit {
	neg := make([]sat.Lit, len(ins))
	for i, l := range ins {
		neg[i] = l.Not()
	}
	return b.gateAnd(neg...).Not()
}

// gateXor returns a literal equivalent to a XOR b2.
func (b *Blaster) gateXor(a, c sat.Lit) sat.Lit {
	if a == b.lTrue {
		return c.Not()
	}
	if a == b.lFalse() {
		return c
	}
	if c == b.lTrue {
		return a.Not()
	}
	if c == b.lFalse() {
		return a
	}
	if a == c {
		return b.lFalse()
	}
	if a == c.Not() {
		return b.lTrue
	}
	o := b.fresh()
	b.s.AddClause(a.Not(), c.Not(), o.Not())
	b.s.AddClause(a, c, o.Not())
	b.s.AddClause(a.Not(), c, o)
	b.s.AddClause(a, c.Not(), o)
	return o
}

// gateMux returns sel ? a : c.
func (b *Blaster) gateMux(sel, a, c sat.Lit) sat.Lit {
	if sel == b.lTrue {
		return a
	}
	if sel == b.lFalse() {
		return c
	}
	if a == c {
		return a
	}
	o := b.fresh()
	b.s.AddClause(sel.Not(), a.Not(), o)
	b.s.AddClause(sel.Not(), a, o.Not())
	b.s.AddClause(sel, c.Not(), o)
	b.s.AddClause(sel, c, o.Not())
	return o
}

// fullAdder returns (sum, carryOut) for a + c + cin.
func (b *Blaster) fullAdder(a, c, cin sat.Lit) (sat.Lit, sat.Lit) {
	sum := b.gateXor(b.gateXor(a, c), cin)
	carry := b.gateOr(b.gateAnd(a, c), b.gateAnd(a, cin), b.gateAnd(c, cin))
	return sum, carry
}

// addVec returns a + c + cin over equal-length vectors (LSB first).
func (b *Blaster) addVec(a, c []sat.Lit, cin sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(a))
	carry := cin
	for i := range a {
		out[i], carry = b.fullAdder(a[i], c[i], carry)
	}
	return out
}

func (b *Blaster) notVec(a []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(a))
	for i, l := range a {
		out[i] = l.Not()
	}
	return out
}

// subVec returns a - c as a + ~c + 1.
func (b *Blaster) subVec(a, c []sat.Lit) []sat.Lit {
	return b.addVec(a, b.notVec(c), b.lTrue)
}

// constVec returns the literal vector of a constant.
func (b *Blaster) constVec(width int, v uint64) []sat.Lit {
	out := make([]sat.Lit, width)
	for i := range out {
		out[i] = b.constLit(v>>uint(i)&1 == 1)
	}
	return out
}

// eqVec returns one literal for vector equality.
func (b *Blaster) eqVec(a, c []sat.Lit) sat.Lit {
	parts := make([]sat.Lit, len(a))
	for i := range a {
		parts[i] = b.gateXor(a[i], c[i]).Not()
	}
	return b.gateAnd(parts...)
}

// ultVec returns one literal for unsigned a < c.
func (b *Blaster) ultVec(a, c []sat.Lit) sat.Lit {
	lt := b.lFalse()
	for i := 0; i < len(a); i++ { // LSB to MSB
		bitLt := b.gateAnd(a[i].Not(), c[i])
		bitEq := b.gateXor(a[i], c[i]).Not()
		lt = b.gateOr(bitLt, b.gateAnd(bitEq, lt))
	}
	return lt
}

// isZeroVec returns one literal for "all bits zero".
func (b *Blaster) isZeroVec(a []sat.Lit) sat.Lit {
	return b.gateOr(a...).Not()
}

// muxVec returns sel ? a : c element-wise.
func (b *Blaster) muxVec(sel sat.Lit, a, c []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(a))
	for i := range a {
		out[i] = b.gateMux(sel, a[i], c[i])
	}
	return out
}

// mulVec returns a * c modulo 2^width via shift-and-add.
func (b *Blaster) mulVec(a, c []sat.Lit) []sat.Lit {
	w := len(a)
	acc := b.constVec(w, 0)
	for i := 0; i < w; i++ {
		// addend = (a << i) masked by c[i]
		addend := make([]sat.Lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				addend[j] = b.lFalse()
			} else {
				addend[j] = b.gateAnd(a[j-i], c[i])
			}
		}
		acc = b.addVec(acc, addend, b.lFalse())
	}
	return acc
}

// divModVec implements restoring division, returning (quotient, remainder)
// with the SMT-LIB convention for zero divisors (q = all-ones, r = a).
// The running remainder uses width+1 bits to absorb the shift before the
// trial subtraction.
func (b *Blaster) divModVec(a, d []sat.Lit) ([]sat.Lit, []sat.Lit) {
	w := len(a)
	ext := func(v []sat.Lit) []sat.Lit { // zero-extend to w+1
		out := make([]sat.Lit, w+1)
		copy(out, v)
		out[w] = b.lFalse()
		return out
	}
	dExt := ext(d)
	r := b.constVec(w+1, 0)
	q := make([]sat.Lit, w)
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | a_i  (stays within w+1 bits: r < d ≤ 2^w-1)
		shifted := make([]sat.Lit, w+1)
		shifted[0] = a[i]
		copy(shifted[1:], r[:w])
		r = shifted
		// trial subtract
		diff := b.subVec(r, dExt)
		geq := b.ultVec(r, dExt).Not()
		r = b.muxVec(geq, diff, r)
		q[i] = geq
	}
	divZero := b.isZeroVec(d)
	qOut := b.muxVec(divZero, b.constVec(w, bv.Mask(w)), q)
	rOut := b.muxVec(divZero, a, r[:w])
	return qOut, rOut
}

// shiftVec implements a barrel shifter. left selects direction; amounts
// ≥ width produce zero.
func (b *Blaster) shiftVec(a, amt []sat.Lit, left bool) []sat.Lit {
	w := len(a)
	out := a
	// Stages for each shift-amount bit that can matter (< log2ceil(w)+1).
	stages := 0
	for 1<<uint(stages) < w {
		stages++
	}
	for k := 0; k < stages && k < len(amt); k++ {
		sh := 1 << uint(k)
		shifted := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var src int
			if left {
				src = i - sh
			} else {
				src = i + sh
			}
			if src < 0 || src >= w {
				shifted[i] = b.lFalse()
			} else {
				shifted[i] = out[src]
			}
		}
		out = b.muxVec(amt[k], shifted, out)
	}
	// If any amount bit ≥ stages is set, or the amount ≥ w numerically,
	// the result is zero. Checking the high bits covers amounts ≥ 2^stages
	// ≥ w for power-of-two w; for other widths also compare amt ≥ w.
	var high []sat.Lit
	for k := stages; k < len(amt); k++ {
		high = append(high, amt[k])
	}
	tooBig := b.gateOr(high...)
	if w != 1<<uint(stages) {
		// non-power-of-two width: amounts in [w, 2^stages) also zero out
		ge := b.ultVec(amt, b.constVec(len(amt), uint64(w))).Not()
		tooBig = b.gateOr(tooBig, ge)
	}
	return b.muxVec(tooBig, b.constVec(w, 0), out)
}

// Bits returns the literal vector (LSB first) representing e, building the
// circuit on demand.
func (b *Blaster) Bits(e *bv.Expr) []sat.Lit {
	if v, ok := b.bits[e]; ok {
		return v
	}
	v := b.blast(e)
	if len(v) != e.Width {
		panic("bitblast: width mismatch in circuit construction")
	}
	b.bits[e] = v
	return v
}

func (b *Blaster) blast(e *bv.Expr) []sat.Lit {
	switch e.Op {
	case bv.OpConst:
		return b.constVec(e.Width, e.Val)
	case bv.OpVar:
		if v, ok := b.varBits[e.Name]; ok {
			return v
		}
		v := make([]sat.Lit, e.Width)
		for i := range v {
			v[i] = b.fresh()
		}
		b.varBits[e.Name] = v
		return v
	case bv.OpNot:
		return b.notVec(b.Bits(e.Args[0]))
	case bv.OpAnd, bv.OpOr, bv.OpXor:
		a, c := b.Bits(e.Args[0]), b.Bits(e.Args[1])
		out := make([]sat.Lit, e.Width)
		for i := range out {
			switch e.Op {
			case bv.OpAnd:
				out[i] = b.gateAnd(a[i], c[i])
			case bv.OpOr:
				out[i] = b.gateOr(a[i], c[i])
			default:
				out[i] = b.gateXor(a[i], c[i])
			}
		}
		return out
	case bv.OpAdd:
		return b.addVec(b.Bits(e.Args[0]), b.Bits(e.Args[1]), b.lFalse())
	case bv.OpSub:
		return b.subVec(b.Bits(e.Args[0]), b.Bits(e.Args[1]))
	case bv.OpMul:
		return b.mulVec(b.Bits(e.Args[0]), b.Bits(e.Args[1]))
	case bv.OpUDiv:
		q, _ := b.divModVec(b.Bits(e.Args[0]), b.Bits(e.Args[1]))
		return q
	case bv.OpUMod:
		_, r := b.divModVec(b.Bits(e.Args[0]), b.Bits(e.Args[1]))
		return r
	case bv.OpShl:
		return b.shiftVec(b.Bits(e.Args[0]), b.Bits(e.Args[1]), true)
	case bv.OpLshr:
		return b.shiftVec(b.Bits(e.Args[0]), b.Bits(e.Args[1]), false)
	case bv.OpEq:
		return []sat.Lit{b.eqVec(b.Bits(e.Args[0]), b.Bits(e.Args[1]))}
	case bv.OpUlt:
		return []sat.Lit{b.ultVec(b.Bits(e.Args[0]), b.Bits(e.Args[1]))}
	case bv.OpUle:
		return []sat.Lit{b.ultVec(b.Bits(e.Args[1]), b.Bits(e.Args[0])).Not()}
	case bv.OpIte:
		sel := b.Bits(e.Args[0])[0]
		return b.muxVec(sel, b.Bits(e.Args[1]), b.Bits(e.Args[2]))
	case bv.OpConcat:
		hi, lo := b.Bits(e.Args[0]), b.Bits(e.Args[1])
		out := make([]sat.Lit, 0, e.Width)
		out = append(out, lo...)
		out = append(out, hi...)
		return out
	case bv.OpExtract:
		src := b.Bits(e.Args[0])
		return src[e.Lo : e.Hi+1]
	case bv.OpZext:
		src := b.Bits(e.Args[0])
		out := make([]sat.Lit, e.Width)
		copy(out, src)
		for i := len(src); i < e.Width; i++ {
			out[i] = b.lFalse()
		}
		return out
	default:
		panic("bitblast: unknown op " + e.Op.String())
	}
}

// AssertTrue constrains the width-1 expression e to be true.
func (b *Blaster) AssertTrue(e *bv.Expr) {
	if e.Width != 1 {
		panic("bitblast: AssertTrue requires a width-1 expression")
	}
	b.s.AddClause(b.Bits(e)[0])
}

// Lit returns the indicator literal of the width-1 expression e, building
// its circuit on demand but adding no unit clause. The Tseitin encoding
// here is biconditional, so assuming the literal (sat.SolveAssuming)
// constrains e to hold exactly as AssertTrue would — the incremental
// session's way of activating a path conjunct without committing it.
func (b *Blaster) Lit(e *bv.Expr) sat.Lit {
	if e.Width != 1 {
		panic("bitblast: Lit requires a width-1 expression")
	}
	return b.Bits(e)[0]
}

// Seen reports whether e's circuit has already been emitted into the
// solver (the session's new-expression test).
func (b *Blaster) Seen(e *bv.Expr) bool {
	_, ok := b.bits[e]
	return ok
}

// VarBits returns the input literals of a blasted variable (LSB first),
// or nil if the variable has not been blasted.
func (b *Blaster) VarBits(name string) []sat.Lit { return b.varBits[name] }

// Model extracts concrete values for every blasted variable after the
// solver reported SAT. Unconstrained bits read as zero.
func (b *Blaster) Model() map[string]uint64 {
	m := make(map[string]uint64, len(b.varBits))
	for name := range b.varBits {
		m[name] = b.VarValue(name)
	}
	return m
}

// ModelFor extracts concrete values for the named variables only — the
// incremental session's model reader, which must not leak variables that
// earlier queries blasted into the shared solver.
func (b *Blaster) ModelFor(names []string) map[string]uint64 {
	m := make(map[string]uint64, len(names))
	for _, name := range names {
		m[name] = b.VarValue(name)
	}
	return m
}

// VarValue reads one blasted variable's value from the solver model.
// Unblasted variables and unconstrained bits read as zero.
func (b *Blaster) VarValue(name string) uint64 {
	var v uint64
	for i, l := range b.varBits[name] {
		val := b.s.Value(l.Var())
		if l.Neg() {
			val = !val
		}
		if val {
			v |= 1 << uint(i)
		}
	}
	return v
}
