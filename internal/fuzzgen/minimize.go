package fuzzgen

// Structured minimization: a fuzz-found failure is shrunk by repeatedly
// deleting one spec element (an apply/body statement, a const entry, a rule
// line, a select case, an emit) and keeping the deletion whenever the
// failure predicate still holds. Because edits happen on the Spec and the
// candidate is re-rendered, every shrunk program is syntactically valid by
// construction; candidates the pipeline rejects for other reasons are
// simply not "failing" and the deletion is rolled back.

// shrinker walks a spec in a fixed pre-order, assigning an index to every
// deletable element; the element whose index equals target is removed.
type shrinker struct {
	target int
	n      int
	done   bool
}

func (sh *shrinker) slot(del func()) {
	if sh.done {
		return
	}
	if sh.n == sh.target {
		del()
		sh.done = true
	}
	sh.n++
}

func (sh *shrinker) body(b *[]Stmt) {
	for i := 0; i < len(*b); i++ {
		if sh.done {
			return
		}
		idx := i
		sh.slot(func() { *b = append((*b)[:idx], (*b)[idx+1:]...) })
		if sh.done {
			return
		}
		switch st := (*b)[i].(type) {
		case *IfStmt:
			sh.body(&st.Then)
			sh.body(&st.Else)
		case *ApplyStmt:
			sh.body(&st.HitThen)
			sh.body(&st.HitElse)
		}
	}
}

func (sh *shrinker) walk(s *Spec) {
	sh.body(&s.Apply)
	for i := range s.Actions {
		sh.body(&s.Actions[i].Body)
	}
	for i := range s.Tables {
		t := &s.Tables[i]
		for j := 0; j < len(t.Entries); j++ {
			idx := j
			sh.slot(func() { t.Entries = append(t.Entries[:idx], t.Entries[idx+1:]...) })
			if sh.done {
				return
			}
		}
	}
	for i := 0; i < len(s.RuleLines); i++ {
		idx := i
		sh.slot(func() { s.RuleLines = append(s.RuleLines[:idx], s.RuleLines[idx+1:]...) })
		if sh.done {
			return
		}
	}
	if s.Select != nil {
		for i := 0; i < len(s.Select.Cases); i++ {
			idx := i
			sh.slot(func() { s.Select.Cases = append(s.Select.Cases[:idx], s.Select.Cases[idx+1:]...) })
			if sh.done {
				return
			}
		}
		// Dropping the whole select collapses the parser to straight-line;
		// the dispatch states go with it.
		sh.slot(func() { s.Select = nil; s.States = nil })
		if sh.done {
			return
		}
	}
	for i := 0; i < len(s.Emits); i++ {
		idx := i
		sh.slot(func() { s.Emits = append(s.Emits[:idx], s.Emits[idx+1:]...) })
		if sh.done {
			return
		}
	}
}

func countSites(s *Spec) int {
	sh := &shrinker{target: -1}
	sh.walk(s)
	return sh.n
}

// Minimize shrinks p by greedy single-element deletion to a fixpoint,
// bounded by maxAttempts predicate evaluations (0 means 400). The fails
// predicate must report whether a candidate still reproduces the original
// failure; it is never called on the input program itself.
func Minimize(p *Program, fails func(*Program) bool, maxAttempts int) *Program {
	if maxAttempts <= 0 {
		maxAttempts = 400
	}
	cur := p
	attempts := 0
	for {
		shrunk := false
		for k := 0; k < countSites(cur.Spec); k++ {
			if attempts >= maxAttempts {
				return cur
			}
			cand := cur.Clone()
			sh := &shrinker{target: k}
			sh.walk(cand.Spec)
			if !sh.done {
				break
			}
			attempts++
			if fails(cand) {
				cur = cand
				shrunk = true
				k-- // indices shifted down; retry the same slot
			}
		}
		if !shrunk {
			return cur
		}
	}
}
