// Package fuzzgen generates random, well-typed, assertion-annotated P4_16
// programs within the verifier's supported subset: random header layouts,
// parser state machines with select transitions, tables with random action
// sets (forwarding-rule-configured, const-entry, or fully symbolic), and
// arithmetic/conditional action and apply bodies sprinkled with
// assertion-language annotations.
//
// Generated programs drive the differential and metamorphic oracles of
// internal/difftest: every program must produce identical verdicts across
// the pipeline's technique matrix, and every explored path must replay
// identically through the independent concrete interpreter. The generator
// is fully deterministic in its seed (math/rand/v2 PCG), so any
// fuzz-found miscompare is reproducible from its seed alone, and a failing
// program can be shrunk by iterative statement deletion (Minimize).
package fuzzgen

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"p4assert/internal/rules"
)

// widths is the pool of field bit-widths the generator draws from; it
// includes the awkward sizes (1, 9, 48) the corpus programs exercise.
var widths = []int{1, 4, 8, 9, 16, 32, 48}

// ---------------------------------------------------------------- spec --

// Spec is the structured form of a generated program. Minimization edits
// the spec (deleting statements, entries, rules, select cases) and
// re-renders, so every shrunk candidate is still syntactically valid.
type Spec struct {
	Headers []HeaderSpec
	Meta    []FieldSpec
	Select  *SelectSpec // start-state transition; nil = plain accept
	States  []StateSpec // extra parser states (one extracted header each)
	Actions []ActionSpec
	Tables  []TableSpec
	Apply   []Stmt
	Emits   []string // header names the deparser emits, in order
	// RuleLines is an optional control-plane configuration in the
	// internal/rules text format.
	RuleLines []string
}

// HeaderSpec declares one header type and its instance name.
type HeaderSpec struct {
	Name   string // instance name in headers_t (h0, h1, ...)
	Fields []FieldSpec
}

// FieldSpec is one bit<W> field.
type FieldSpec struct {
	Name  string
	Width int
}

// SelectSpec is the start state's select transition.
type SelectSpec struct {
	Key     string // field path on the first header, e.g. "hdr.h0.f0"
	Cases   []SelectCase
	Default string // "accept", "reject" or a state name
}

// SelectCase maps one literal to a transition target.
type SelectCase struct {
	Value  uint64
	Target string
}

// StateSpec is a non-start parser state extracting one header.
type StateSpec struct {
	Name   string
	Header string
}

// ActionSpec is one control action.
type ActionSpec struct {
	Name   string
	Params []FieldSpec
	Body   []Stmt
}

// TableSpec is one match-action table.
type TableSpec struct {
	Name    string
	Key     string // field path
	KeyKind string // "exact" or "ternary"
	Actions []string
	Default ActionCall
	Entries []EntrySpec
}

// ActionCall names an action with constant arguments.
type ActionCall struct {
	Name string
	Args []uint64
}

// EntrySpec is one const entry.
type EntrySpec struct {
	Wildcard bool
	Value    uint64
	Mask     uint64 // 0 = exact entry
	Call     ActionCall
}

// ------------------------------------------------------------ statements --

// Stmt is a renderable statement of an action body or apply block.
type Stmt interface {
	render(b *strings.Builder, indent string)
	clone() Stmt
}

// AssignStmt is "LHS = RHS;" with pre-rendered well-typed expressions.
type AssignStmt struct{ LHS, RHS string }

// IfStmt branches on a pre-rendered boolean condition.
type IfStmt struct {
	Cond string
	Then []Stmt
	Else []Stmt
}

// ApplyStmt applies a table, optionally branching on the hit result.
type ApplyStmt struct {
	Table string
	// HitThen, when non-nil, renders "if (T.apply().hit) { ... }".
	HitThen []Stmt
	HitElse []Stmt
	Hit     bool
}

// AssertStmt is an @assert annotation.
type AssertStmt struct{ Text string }

// AssumeStmt is an @assume annotation.
type AssumeStmt struct{ Cond string }

// DropStmt is mark_to_drop(standard_metadata).
type DropStmt struct{}

func (s *AssignStmt) render(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%s%s = %s;\n", in, s.LHS, s.RHS)
}
func (s *AssignStmt) clone() Stmt { c := *s; return &c }

func (s *IfStmt) render(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%sif (%s) {\n", in, s.Cond)
	renderBody(b, s.Then, in+"    ")
	if len(s.Else) > 0 {
		fmt.Fprintf(b, "%s} else {\n", in)
		renderBody(b, s.Else, in+"    ")
	}
	fmt.Fprintf(b, "%s}\n", in)
}
func (s *IfStmt) clone() Stmt {
	return &IfStmt{Cond: s.Cond, Then: cloneBody(s.Then), Else: cloneBody(s.Else)}
}

func (s *ApplyStmt) render(b *strings.Builder, in string) {
	if !s.Hit {
		fmt.Fprintf(b, "%s%s.apply();\n", in, s.Table)
		return
	}
	fmt.Fprintf(b, "%sif (%s.apply().hit) {\n", in, s.Table)
	renderBody(b, s.HitThen, in+"    ")
	if len(s.HitElse) > 0 {
		fmt.Fprintf(b, "%s} else {\n", in)
		renderBody(b, s.HitElse, in+"    ")
	}
	fmt.Fprintf(b, "%s}\n", in)
}
func (s *ApplyStmt) clone() Stmt {
	return &ApplyStmt{Table: s.Table, Hit: s.Hit, HitThen: cloneBody(s.HitThen), HitElse: cloneBody(s.HitElse)}
}

func (s *AssertStmt) render(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%s@assert(%q);\n", in, s.Text)
}
func (s *AssertStmt) clone() Stmt { c := *s; return &c }

func (s *AssumeStmt) render(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%s@assume(%s);\n", in, s.Cond)
}
func (s *AssumeStmt) clone() Stmt { c := *s; return &c }

func (s *DropStmt) render(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%smark_to_drop(standard_metadata);\n", in)
}
func (s *DropStmt) clone() Stmt { return &DropStmt{} }

func renderBody(b *strings.Builder, body []Stmt, indent string) {
	for _, s := range body {
		s.render(b, indent)
	}
}

func cloneBody(body []Stmt) []Stmt {
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = s.clone()
	}
	return out
}

// --------------------------------------------------------------- program --

// Program is one generated fuzz program.
type Program struct {
	Seed uint64
	Spec *Spec
}

// Name is a stable identifier for reports and regression registration.
func (p *Program) Name() string { return fmt.Sprintf("fuzz-%d", p.Seed) }

// Source renders the spec as P4_16 text.
func (p *Program) Source() string { return p.Spec.Render() }

// Rules parses the spec's rule lines into a RuleSet (nil when the program
// carries no control-plane configuration).
func (p *Program) Rules() (*rules.RuleSet, error) {
	if len(p.Spec.RuleLines) == 0 {
		return nil, nil
	}
	return rules.Parse(strings.Join(p.Spec.RuleLines, "\n"))
}

// Clone deep-copies the program (minimization mutates clones).
func (p *Program) Clone() *Program {
	s := &Spec{
		Headers:   append([]HeaderSpec(nil), p.Spec.Headers...),
		Meta:      append([]FieldSpec(nil), p.Spec.Meta...),
		States:    append([]StateSpec(nil), p.Spec.States...),
		Tables:    make([]TableSpec, len(p.Spec.Tables)),
		Actions:   make([]ActionSpec, len(p.Spec.Actions)),
		Apply:     cloneBody(p.Spec.Apply),
		Emits:     append([]string(nil), p.Spec.Emits...),
		RuleLines: append([]string(nil), p.Spec.RuleLines...),
	}
	if p.Spec.Select != nil {
		sel := *p.Spec.Select
		sel.Cases = append([]SelectCase(nil), p.Spec.Select.Cases...)
		s.Select = &sel
	}
	for i, a := range p.Spec.Actions {
		s.Actions[i] = ActionSpec{Name: a.Name, Params: append([]FieldSpec(nil), a.Params...), Body: cloneBody(a.Body)}
	}
	for i, t := range p.Spec.Tables {
		ct := t
		ct.Actions = append([]string(nil), t.Actions...)
		ct.Entries = append([]EntrySpec(nil), t.Entries...)
		s.Tables[i] = ct
	}
	return &Program{Seed: p.Seed, Spec: s}
}

// Render produces the P4_16 source for the spec.
func (s *Spec) Render() string {
	var b strings.Builder
	for _, h := range s.Headers {
		fmt.Fprintf(&b, "header %s_t {\n", h.Name)
		for _, f := range h.Fields {
			fmt.Fprintf(&b, "    bit<%d> %s;\n", f.Width, f.Name)
		}
		b.WriteString("}\n")
	}
	b.WriteString("struct headers_t {\n")
	for _, h := range s.Headers {
		fmt.Fprintf(&b, "    %s_t %s;\n", h.Name, h.Name)
	}
	b.WriteString("}\nstruct metadata_t {\n")
	for _, f := range s.Meta {
		fmt.Fprintf(&b, "    bit<%d> %s;\n", f.Width, f.Name)
	}
	b.WriteString("}\n\n")

	b.WriteString("parser FP(packet_in pkt, out headers_t hdr, inout metadata_t meta,\n")
	b.WriteString("          inout standard_metadata_t standard_metadata) {\n")
	b.WriteString("    state start {\n")
	if len(s.Headers) > 0 {
		fmt.Fprintf(&b, "        pkt.extract(hdr.%s);\n", s.Headers[0].Name)
	}
	if s.Select == nil {
		b.WriteString("        transition accept;\n")
	} else {
		fmt.Fprintf(&b, "        transition select(%s) {\n", s.Select.Key)
		for _, c := range s.Select.Cases {
			fmt.Fprintf(&b, "            %d: %s;\n", c.Value, c.Target)
		}
		fmt.Fprintf(&b, "            default: %s;\n", s.Select.Default)
		b.WriteString("        }\n")
	}
	b.WriteString("    }\n")
	for _, st := range s.States {
		fmt.Fprintf(&b, "    state %s { pkt.extract(hdr.%s); transition accept; }\n", st.Name, st.Header)
	}
	b.WriteString("}\n\n")

	b.WriteString("control FI(inout headers_t hdr, inout metadata_t meta,\n")
	b.WriteString("           inout standard_metadata_t standard_metadata) {\n")
	for _, a := range s.Actions {
		params := make([]string, len(a.Params))
		for i, pr := range a.Params {
			params[i] = fmt.Sprintf("bit<%d> %s", pr.Width, pr.Name)
		}
		fmt.Fprintf(&b, "    action %s(%s) {\n", a.Name, strings.Join(params, ", "))
		renderBody(&b, a.Body, "        ")
		b.WriteString("    }\n")
	}
	for _, t := range s.Tables {
		fmt.Fprintf(&b, "    table %s {\n", t.Name)
		fmt.Fprintf(&b, "        key = { %s : %s; }\n", t.Key, t.KeyKind)
		fmt.Fprintf(&b, "        actions = { %s; }\n", strings.Join(t.Actions, "; "))
		fmt.Fprintf(&b, "        default_action = %s;\n", renderCall(t.Default))
		if len(t.Entries) > 0 {
			b.WriteString("        const entries = {\n")
			for _, e := range t.Entries {
				switch {
				case e.Wildcard:
					fmt.Fprintf(&b, "            _ : %s;\n", renderCall(e.Call))
				case e.Mask != 0:
					fmt.Fprintf(&b, "            %d &&& %d : %s;\n", e.Value, e.Mask, renderCall(e.Call))
				default:
					fmt.Fprintf(&b, "            %d : %s;\n", e.Value, renderCall(e.Call))
				}
			}
			b.WriteString("        }\n")
		}
		b.WriteString("    }\n")
	}
	b.WriteString("    apply {\n")
	renderBody(&b, s.Apply, "        ")
	b.WriteString("    }\n}\n\n")

	b.WriteString("control FD(packet_out pkt, in headers_t hdr) {\n    apply {\n")
	for _, h := range s.Emits {
		fmt.Fprintf(&b, "        pkt.emit(hdr.%s);\n", h)
	}
	b.WriteString("    }\n}\n\nV1Switch(FP, FI, FD) main;\n")
	return b.String()
}

func renderCall(c ActionCall) string {
	if c.Name == "NoAction" {
		return "NoAction"
	}
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = fmt.Sprintf("%d", a)
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(args, ", "))
}

// ------------------------------------------------------------- generator --

// fieldRef is an addressable scalar in generated expressions.
type fieldRef struct {
	path  string
	width int
}

type gen struct {
	r    *rand.Rand
	spec *Spec
	// refs are the always-addressable scalars (header fields, metadata,
	// standard_metadata.egress_spec).
	refs []fieldRef
	// hdrRefs are header fields only, per header.
	hdrRefs map[string][]fieldRef
	// metaRefs are metadata fields only (targets for constant() asserts).
	metaRefs []fieldRef
	asserts  int
}

// Generate produces the fuzz program for a seed. Same seed, same program.
func Generate(seed uint64) *Program {
	g := &gen{
		r:       rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		spec:    &Spec{},
		hdrRefs: map[string][]fieldRef{},
	}
	g.genHeaders()
	g.genMeta()
	g.genParser()
	g.genActions()
	g.genTables()
	g.genApply()
	g.genEmits()
	g.genRules()
	return &Program{Seed: seed, Spec: g.spec}
}

func (g *gen) intn(n int) int      { return int(g.r.Uint64N(uint64(n))) }
func (g *gen) chance(p float64) bool { return g.r.Float64() < p }
func (g *gen) width() int          { return widths[g.intn(len(widths))] }

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// lit draws a literal biased toward small values and boundary patterns, so
// generated comparisons are satisfiable (and violable) often.
func (g *gen) lit(w int) uint64 {
	switch g.intn(4) {
	case 0:
		return uint64(g.intn(4)) & mask(w)
	case 1:
		return g.r.Uint64() & mask(w)
	case 2:
		return mask(w)
	default:
		return uint64(g.intn(256)) & mask(w)
	}
}

func (g *gen) pick(refs []fieldRef) fieldRef { return refs[g.intn(len(refs))] }

func (g *gen) genHeaders() {
	nh := 1 + g.intn(3)
	for i := 0; i < nh; i++ {
		h := HeaderSpec{Name: fmt.Sprintf("h%d", i)}
		nf := 1 + g.intn(3)
		for j := 0; j < nf; j++ {
			f := FieldSpec{Name: fmt.Sprintf("f%d", j), Width: g.width()}
			h.Fields = append(h.Fields, f)
			ref := fieldRef{path: fmt.Sprintf("hdr.%s.%s", h.Name, f.Name), width: f.Width}
			g.refs = append(g.refs, ref)
			g.hdrRefs[h.Name] = append(g.hdrRefs[h.Name], ref)
		}
		g.spec.Headers = append(g.spec.Headers, h)
	}
}

func (g *gen) genMeta() {
	nm := 1 + g.intn(3)
	for i := 0; i < nm; i++ {
		f := FieldSpec{Name: fmt.Sprintf("m%d", i), Width: g.width()}
		g.spec.Meta = append(g.spec.Meta, f)
		ref := fieldRef{path: "meta." + f.Name, width: f.Width}
		g.refs = append(g.refs, ref)
		g.metaRefs = append(g.metaRefs, ref)
	}
	g.refs = append(g.refs, fieldRef{path: "standard_metadata.egress_spec", width: 9})
}

// genParser builds the start state and, when more than one header exists, a
// select transition dispatching to states extracting the other headers.
func (g *gen) genParser() {
	if len(g.spec.Headers) == 1 || g.chance(0.15) {
		return // straight accept
	}
	key := g.pick(g.hdrRefs[g.spec.Headers[0].Name])
	sel := &SelectSpec{Key: key.path}
	seen := map[uint64]bool{}
	for i := 1; i < len(g.spec.Headers); i++ {
		v := g.lit(key.width)
		if seen[v] {
			continue // duplicate case values are rejected upstream
		}
		seen[v] = true
		st := StateSpec{Name: fmt.Sprintf("parse_h%d", i), Header: g.spec.Headers[i].Name}
		g.spec.States = append(g.spec.States, st)
		sel.Cases = append(sel.Cases, SelectCase{Value: v, Target: st.Name})
	}
	switch g.intn(3) {
	case 0:
		sel.Default = "reject"
	default:
		sel.Default = "accept"
	}
	g.spec.Select = sel
}

// expr produces a well-typed bit<w> expression over scope, depth-bounded.
func (g *gen) expr(w, depth int, scope []fieldRef) string {
	if depth <= 0 || g.chance(0.4) {
		// Leaf: literal, same-width reference, or cast reference.
		if g.chance(0.4) {
			return fmt.Sprintf("%d", g.lit(w))
		}
		var same []fieldRef
		for _, r := range scope {
			if r.width == w {
				same = append(same, r)
			}
		}
		if len(same) > 0 && g.chance(0.7) {
			return g.pick(same).path
		}
		r := g.pick(scope)
		if r.width == w {
			return r.path
		}
		return fmt.Sprintf("(bit<%d>)%s", w, r.path)
	}
	switch g.intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(w, depth-1, scope), g.expr(w, depth-1, scope))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.expr(w, depth-1, scope), g.expr(w, depth-1, scope))
	case 2:
		return fmt.Sprintf("(%s & %s)", g.expr(w, depth-1, scope), g.expr(w, depth-1, scope))
	case 3:
		return fmt.Sprintf("(%s | %s)", g.expr(w, depth-1, scope), g.expr(w, depth-1, scope))
	case 4:
		return fmt.Sprintf("(%s ^ %s)", g.expr(w, depth-1, scope), g.expr(w, depth-1, scope))
	case 5:
		return fmt.Sprintf("(~%s)", g.expr(w, depth-1, scope))
	default:
		if w > 1 {
			return fmt.Sprintf("(%s >> %d)", g.expr(w, depth-1, scope), 1+g.intn(w-1))
		}
		return fmt.Sprintf("(%s ^ %s)", g.expr(w, depth-1, scope), g.expr(w, depth-1, scope))
	}
}

var cmpOps = []string{"==", "!=", "<", "<=", ">", ">="}

// cond produces a boolean expression for if conditions and assumes.
func (g *gen) cond(depth int, scope []fieldRef) string {
	if depth <= 0 || g.chance(0.5) {
		r := g.pick(scope)
		op := cmpOps[g.intn(len(cmpOps))]
		if g.chance(0.8) {
			return fmt.Sprintf("%s %s %d", r.path, op, g.lit(r.width))
		}
		return fmt.Sprintf("%s %s (bit<%d>)%s", r.path, op, r.width, g.pick(scope).path)
	}
	switch g.intn(3) {
	case 0:
		return fmt.Sprintf("(%s && %s)", g.cond(depth-1, scope), g.cond(depth-1, scope))
	case 1:
		return fmt.Sprintf("(%s || %s)", g.cond(depth-1, scope), g.cond(depth-1, scope))
	default:
		return fmt.Sprintf("!(%s)", g.cond(depth-1, scope))
	}
}

// assertText draws an assertion from the paper's Figure 4 idiom templates.
func (g *gen) assertText() string {
	g.asserts++
	r := g.pick(g.refs)
	op := cmpOps[g.intn(len(cmpOps))]
	base := fmt.Sprintf("%s %s %d", r.path, op, g.lit(r.width))
	switch g.intn(7) {
	case 0:
		return base
	case 1:
		r2 := g.pick(g.refs)
		return fmt.Sprintf("if(%s, %s %s %d)", base, r2.path, cmpOps[g.intn(len(cmpOps))], g.lit(r2.width))
	case 2:
		return fmt.Sprintf("if(%s, forward())", base)
	case 3:
		return fmt.Sprintf("if(%s, !forward())", base)
	case 4:
		return fmt.Sprintf("if(forward(), %s)", base)
	case 5:
		if len(g.metaRefs) > 0 {
			return fmt.Sprintf("constant(%s)", g.pick(g.metaRefs).path)
		}
		return base
	default:
		h := g.spec.Headers[g.intn(len(g.spec.Headers))].Name
		return fmt.Sprintf("if(extract_header(hdr.%s), emit_header(hdr.%s))", h, h)
	}
}

// genActions emits 1-3 actions; the first always steers the egress port so
// forward()-based assertions have observable behaviour to talk about.
func (g *gen) genActions() {
	na := 1 + g.intn(3)
	for i := 0; i < na; i++ {
		a := ActionSpec{Name: fmt.Sprintf("a%d", i)}
		np := g.intn(3)
		scope := append([]fieldRef(nil), g.refs...)
		for j := 0; j < np; j++ {
			p := FieldSpec{Name: fmt.Sprintf("p%d", j), Width: g.width()}
			a.Params = append(a.Params, p)
			scope = append(scope, fieldRef{path: p.Name, width: p.Width})
		}
		if i == 0 {
			a.Body = append(a.Body, &AssignStmt{
				LHS: "standard_metadata.egress_spec",
				RHS: g.expr(9, 1, scope),
			})
		}
		nb := g.intn(3)
		for j := 0; j < nb; j++ {
			tgt := g.pick(g.refs) // header/meta fields and egress
			a.Body = append(a.Body, &AssignStmt{LHS: tgt.path, RHS: g.expr(tgt.width, 2, scope)})
		}
		if i > 0 && g.chance(0.3) {
			a.Body = append(a.Body, &DropStmt{})
		}
		g.spec.Actions = append(g.spec.Actions, a)
	}
}

func (g *gen) genTables() {
	nt := 1 + g.intn(2)
	for i := 0; i < nt; i++ {
		key := g.pick(g.refs)
		t := TableSpec{
			Name:    fmt.Sprintf("t%d", i),
			Key:     key.path,
			KeyKind: "exact",
		}
		if g.chance(0.35) {
			t.KeyKind = "ternary"
		}
		// Random non-empty action subset, plus NoAction.
		for _, a := range g.spec.Actions {
			if g.chance(0.7) {
				t.Actions = append(t.Actions, a.Name)
			}
		}
		if len(t.Actions) == 0 {
			t.Actions = append(t.Actions, g.spec.Actions[g.intn(len(g.spec.Actions))].Name)
		}
		t.Actions = append(t.Actions, "NoAction")
		t.Default = g.actionCall(t.Actions[g.intn(len(t.Actions))])
		// Const entries pin the table's behaviour (and make hit/miss
		// concrete); tables without them stay control-plane-symbolic.
		if g.chance(0.4) {
			ne := 1 + g.intn(3)
			for j := 0; j < ne; j++ {
				e := EntrySpec{Call: g.actionCall(t.Actions[g.intn(len(t.Actions))])}
				e.Value = g.lit(key.width)
				if t.KeyKind == "ternary" {
					switch g.intn(3) {
					case 0:
						e.Mask = g.lit(key.width)
						if e.Mask == 0 {
							e.Mask = mask(key.width)
						}
						e.Value &= e.Mask
					case 1:
						if j == ne-1 {
							e.Wildcard = true
						}
					}
				}
				t.Entries = append(t.Entries, e)
			}
		}
		g.spec.Tables = append(g.spec.Tables, t)
	}
}

func (g *gen) actionCall(name string) ActionCall {
	c := ActionCall{Name: name}
	if name == "NoAction" {
		return c
	}
	for _, a := range g.spec.Actions {
		if a.Name == name {
			for _, p := range a.Params {
				c.Args = append(c.Args, g.lit(p.Width))
			}
		}
	}
	return c
}

// genApply builds the ingress apply block: one apply per table (sometimes
// guarded or hit-branched), interleaved with assignments, conditionals,
// equality cascades (the -O3 chain-compaction trigger), assumes and
// assertions.
func (g *gen) genApply() {
	var stmts []Stmt
	for _, t := range g.spec.Tables {
		ap := &ApplyStmt{Table: t.Name}
		if g.chance(0.25) {
			ap.Hit = true
			ap.HitThen = []Stmt{g.assignStmt()}
			if g.chance(0.5) {
				ap.HitElse = []Stmt{g.assignStmt()}
			}
		}
		if g.chance(0.25) {
			stmts = append(stmts, &IfStmt{Cond: g.cond(1, g.refs), Then: []Stmt{ap}})
		} else {
			stmts = append(stmts, ap)
		}
	}
	nFill := 1 + g.intn(3)
	for i := 0; i < nFill; i++ {
		stmts = append(stmts, g.fillerStmt())
	}
	nAssert := 1 + g.intn(3)
	for i := 0; i < nAssert; i++ {
		stmts = append(stmts, &AssertStmt{Text: g.assertText()})
	}
	if g.chance(0.15) {
		stmts = append(stmts, &AssumeStmt{Cond: g.cond(1, g.refs)})
	}
	g.r.Shuffle(len(stmts), func(i, j int) { stmts[i], stmts[j] = stmts[j], stmts[i] })
	g.spec.Apply = stmts
}

func (g *gen) assignStmt() Stmt {
	tgt := g.pick(g.refs)
	return &AssignStmt{LHS: tgt.path, RHS: g.expr(tgt.width, 2, g.refs)}
}

func (g *gen) fillerStmt() Stmt {
	switch g.intn(5) {
	case 0:
		// Same-key equality cascade of length >= 3: the shape -O3's
		// chain-compaction rewrites into an assume-guarded fork. Needs a
		// key wide enough to supply the distinct case constants.
		var wide []fieldRef
		for _, r := range g.refs {
			if r.width >= 3 {
				wide = append(wide, r)
			}
		}
		key := g.pick(wide) // non-empty: egress_spec is width 9
		seen := map[uint64]bool{}
		var root *IfStmt
		var curr *IfStmt
		n := 3 + g.intn(2)
		for i := 0; i < n; i++ {
			v := g.lit(key.width)
			for seen[v] {
				v = (v + 1) & mask(key.width)
			}
			seen[v] = true
			next := &IfStmt{
				Cond: fmt.Sprintf("%s == %d", key.path, v),
				Then: []Stmt{g.assignStmt()},
			}
			if root == nil {
				root, curr = next, next
			} else {
				curr.Else = []Stmt{next}
				curr = next
			}
		}
		curr.Else = []Stmt{g.assignStmt()}
		return root
	case 1:
		then := []Stmt{g.assignStmt()}
		if g.chance(0.4) {
			then = append(then, &AssertStmt{Text: g.assertText()})
		}
		st := &IfStmt{Cond: g.cond(2, g.refs), Then: then}
		if g.chance(0.5) {
			st.Else = []Stmt{g.assignStmt()}
		}
		return st
	case 2:
		return &IfStmt{Cond: g.cond(1, g.refs), Then: []Stmt{&DropStmt{}}}
	default:
		return g.assignStmt()
	}
}

func (g *gen) genEmits() {
	for _, h := range g.spec.Headers {
		if g.chance(0.85) {
			g.spec.Emits = append(g.spec.Emits, h.Name)
		}
	}
}

// genRules emits a control-plane configuration for the symbolic tables
// (those without const entries): the metamorphic rules-oracle checks that
// every violation found under this concrete configuration is also found by
// the fully symbolic run.
func (g *gen) genRules() {
	if g.chance(0.4) {
		return
	}
	for _, t := range g.spec.Tables {
		if len(t.Entries) > 0 || g.chance(0.3) {
			continue
		}
		keyW := g.refWidth(t.Key)
		nr := 1 + g.intn(3)
		for i := 0; i < nr; i++ {
			an := t.Actions[g.intn(len(t.Actions))]
			var m string
			switch {
			case t.KeyKind == "ternary" && g.chance(0.3):
				m = "*"
			case t.KeyKind == "ternary" && g.chance(0.5):
				m = fmt.Sprintf("0x%x&0x%x", g.lit(keyW), g.lit(keyW))
			default:
				m = fmt.Sprintf("0x%x", g.lit(keyW))
			}
			line := fmt.Sprintf("%s %s %s", t.Name, an, m)
			if args := g.actionCall(an).Args; len(args) > 0 {
				parts := make([]string, len(args))
				for j, a := range args {
					parts[j] = fmt.Sprintf("0x%x", a)
				}
				line += " => " + strings.Join(parts, " ")
			}
			g.spec.RuleLines = append(g.spec.RuleLines, line)
		}
	}
}

func (g *gen) refWidth(path string) int {
	for _, r := range g.refs {
		if r.path == path {
			return r.width
		}
	}
	return 8
}
