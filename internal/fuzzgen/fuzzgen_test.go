package fuzzgen

import (
	"strings"
	"testing"

	"p4assert/internal/p4"
)

// TestDeterministic: the generator is a pure function of its seed.
func TestDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a := Generate(seed).Source()
		b := Generate(seed).Source()
		if a != b {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
	if Generate(1).Source() == Generate(2).Source() {
		t.Fatalf("seeds 1 and 2 produced identical programs")
	}
}

// TestWellTyped: every generated program parses, typechecks, and carries at
// least one assertion; any rule lines parse in the rules format.
func TestWellTyped(t *testing.T) {
	for seed := uint64(0); seed < 150; seed++ {
		p := Generate(seed)
		src := p.Source()
		prog, err := p4.Parse(p.Name()+".p4", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if err := prog.Check(); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}
		if !strings.Contains(src, "@assert(") {
			t.Fatalf("seed %d: program has no assertions\n%s", seed, src)
		}
		if _, err := p.Rules(); err != nil {
			t.Fatalf("seed %d: rules: %v\n%s", seed, err, strings.Join(p.Spec.RuleLines, "\n"))
		}
	}
}

// TestCloneIndependent: mutating a clone leaves the original untouched.
func TestCloneIndependent(t *testing.T) {
	p := Generate(7)
	orig := p.Source()
	c := p.Clone()
	c.Spec.Apply = nil
	c.Spec.Emits = nil
	c.Spec.RuleLines = nil
	if p.Source() != orig {
		t.Fatalf("mutating clone changed the original")
	}
	if c.Source() == orig {
		t.Fatalf("clone mutation had no effect")
	}
}

// TestMinimize: shrinking against a syntactic predicate reaches a small
// still-failing program, and every candidate the minimizer accepts renders
// to valid P4.
func TestMinimize(t *testing.T) {
	var p *Program
	for seed := uint64(0); ; seed++ {
		p = Generate(seed)
		if countSites(p.Spec) >= 8 {
			break
		}
	}
	// Failure predicate: the program still applies table t0. Everything
	// else is deletable noise.
	fails := func(c *Program) bool {
		src := c.Source()
		if prog, err := p4.Parse("m.p4", src); err != nil || prog.Check() != nil {
			t.Fatalf("minimizer produced invalid candidate:\n%s", src)
		}
		return strings.Contains(src, "t0.apply()")
	}
	m := Minimize(p, fails, 0)
	if !strings.Contains(m.Source(), "t0.apply()") {
		t.Fatalf("minimized program lost the failure")
	}
	if got, orig := countSites(m.Spec), countSites(p.Spec); got >= orig {
		t.Fatalf("minimizer did not shrink: %d -> %d sites", orig, got)
	}
	// The surviving deletable sites should be few: the apply statement
	// itself (possibly under a wrapper) plus undeletable residue.
	if countSites(m.Spec) > 4 {
		t.Logf("minimized to %d sites:\n%s", countSites(m.Spec), m.Source())
	}
}
