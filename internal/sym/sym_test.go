package sym

import (
	"testing"
	"time"

	"p4assert/internal/model"
)

// buildIf returns a model with one symbolic input branching N-deep.
func chainModel(depth int) *model.Program {
	p := model.NewProgram()
	p.AddGlobal("in", 8, true, 0)
	p.AddGlobal("out", 8, false, 0)
	var body []model.Stmt
	for i := 0; i < depth; i++ {
		body = append(body, &model.If{
			Cond: &model.Bin{Op: model.OpEq,
				X: &model.Bin{Op: model.OpAnd, X: &model.Ref{Name: "in"}, Y: &model.Const{Width: 8, Val: 1 << uint(i)}},
				Y: &model.Const{Width: 8, Val: 0}},
			Then: []model.Stmt{&model.Assign{LHS: "out", RHS: &model.Const{Width: 8, Val: uint64(i)}}},
			Else: []model.Stmt{&model.Assign{LHS: "out", RHS: &model.Const{Width: 8, Val: uint64(i + 100)}}},
		})
	}
	p.AddFunc(&model.Func{Name: "main", Body: body})
	p.Entry = []string{"main"}
	return p
}

func TestPathExplosion(t *testing.T) {
	for depth := 1; depth <= 6; depth++ {
		res, err := Execute(chainModel(depth), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(1) << uint(depth); res.Metrics.Paths != want {
			t.Fatalf("depth %d: %d paths, want %d", depth, res.Metrics.Paths, want)
		}
	}
}

func TestInfeasiblePruning(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("x", 8, true, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.Assume{Cond: &model.Bin{Op: model.OpEq, X: &model.Ref{Name: "x"}, Y: &model.Const{Width: 8, Val: 5}}},
		&model.If{
			Cond: &model.Bin{Op: model.OpEq, X: &model.Ref{Name: "x"}, Y: &model.Const{Width: 8, Val: 6}},
			Then: []model.Stmt{&model.AssertCheck{ID: 0, Cond: &model.Const{Width: 1, Val: 0}}},
		},
	}})
	p.Entry = []string{"main"}
	p.Asserts = []*model.AssertInfo{{ID: 0, Source: "false"}}
	res, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The then-branch (x==6) contradicts the assumption (x==5): the
	// always-false assertion inside is unreachable.
	if len(res.Violations) != 0 {
		t.Fatal("assertion in infeasible branch must not fire")
	}
	if res.Metrics.KilledInfeasible == 0 {
		t.Fatal("infeasible branch should be pruned")
	}
	if res.Metrics.Paths != 1 {
		t.Fatalf("paths = %d, want 1", res.Metrics.Paths)
	}
}

func TestAssertViolationModel(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("x", 16, true, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpNe,
			X: &model.Ref{Name: "x"}, Y: &model.Const{Width: 16, Val: 0xdead}}},
	}})
	p.Entry = []string{"main"}
	p.Asserts = []*model.AssertInfo{{ID: 0, Source: "x != 0xdead"}}
	res, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatal("expected one violation")
	}
	if res.Violations[0].Model["x"] != 0xdead {
		t.Fatalf("counterexample x = %#x, want 0xdead", res.Violations[0].Model["x"])
	}
	if !res.Violated(0) || res.Violated(1) {
		t.Fatal("Violated() lookup wrong")
	}
}

func TestAssertPassingSideContinues(t *testing.T) {
	// After reporting a violation the executor explores the passing side,
	// so a second assertion downstream is still checked.
	p := model.NewProgram()
	p.AddGlobal("x", 8, true, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpLt,
			X: &model.Ref{Name: "x"}, Y: &model.Const{Width: 8, Val: 10}}},
		&model.AssertCheck{ID: 1, Cond: &model.Bin{Op: model.OpLt,
			X: &model.Ref{Name: "x"}, Y: &model.Const{Width: 8, Val: 5}}},
	}})
	p.Entry = []string{"main"}
	p.Asserts = []*model.AssertInfo{{ID: 0}, {ID: 1}}
	res, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated(0) || !res.Violated(1) {
		t.Fatalf("both assertions should be violated, got %v", res.Violations)
	}
	// The second counterexample must respect the first assertion's
	// passing constraint (x < 10).
	for _, v := range res.Violations {
		if v.AssertID == 1 && v.Model["x"] >= 10 {
			t.Fatalf("second violation model x=%d ignores first constraint", v.Model["x"])
		}
	}
}

func TestForkExploresAllBranches(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("sel", 8, false, 0)
	fork := &model.Fork{Selector: "sel", Labels: []string{"a", "b", "c"}}
	for i := 0; i < 3; i++ {
		fork.Branches = append(fork.Branches, []model.Stmt{
			&model.Assign{LHS: "sel", RHS: &model.Const{Width: 8, Val: uint64(i)}},
		})
	}
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{fork}})
	p.Entry = []string{"main"}
	res, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Paths != 3 {
		t.Fatalf("paths = %d, want 3", res.Metrics.Paths)
	}
}

func TestExitSkipsRestOfBlockOnly(t *testing.T) {
	// Exit terminates the current entry function; later entry functions
	// still run (v1model: exit in ingress does not skip egress).
	p := model.NewProgram()
	p.AddGlobal("a", 8, false, 0)
	p.AddGlobal("b", 8, false, 0)
	p.AddFunc(&model.Func{Name: "ingress", Body: []model.Stmt{
		&model.Exit{},
		&model.Assign{LHS: "a", RHS: &model.Const{Width: 8, Val: 1}},
	}})
	p.AddFunc(&model.Func{Name: "egress", Body: []model.Stmt{
		&model.Assign{LHS: "b", RHS: &model.Const{Width: 8, Val: 1}},
		&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpEq,
			X: &model.Ref{Name: "a"}, Y: &model.Const{Width: 8, Val: 0}}},
		&model.AssertCheck{ID: 1, Cond: &model.Bin{Op: model.OpEq,
			X: &model.Ref{Name: "b"}, Y: &model.Const{Width: 8, Val: 1}}},
	}})
	p.Entry = []string{"ingress", "egress"}
	p.Asserts = []*model.AssertInfo{{ID: 0}, {ID: 1}}
	res, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("exit semantics wrong: %v", res.Violations)
	}
}

func TestHaltSkipsToChecks(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("a", 8, false, 0)
	p.AddFunc(&model.Func{Name: "parser", Body: []model.Stmt{&model.Halt{}}})
	p.AddFunc(&model.Func{Name: "ingress", Body: []model.Stmt{
		&model.Assign{LHS: "a", RHS: &model.Const{Width: 8, Val: 1}},
	}})
	p.AddFunc(&model.Func{Name: "$checks", Body: []model.Stmt{
		&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpEq,
			X: &model.Ref{Name: "a"}, Y: &model.Const{Width: 8, Val: 0}}},
	}})
	p.Entry = []string{"parser", "ingress", "$checks"}
	p.Asserts = []*model.AssertInfo{{ID: 0}}
	res, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatal("halt should skip ingress but still run $checks")
	}
}

func TestCallDepthBoundKillsPath(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("n", 8, false, 0)
	p.AddFunc(&model.Func{Name: "loop", Body: []model.Stmt{
		&model.Assign{LHS: "n", RHS: &model.Bin{Op: model.OpAdd,
			X: &model.Ref{Name: "n"}, Y: &model.Const{Width: 8, Val: 1}}},
		&model.Call{Func: "loop"},
	}})
	p.AddFunc(&model.Func{Name: "$checks", Body: []model.Stmt{
		&model.AssertCheck{ID: 0, Cond: &model.Const{Width: 1, Val: 0}},
	}})
	p.Entry = []string{"loop", "$checks"}
	p.Asserts = []*model.AssertInfo{{ID: 0}}
	res, err := Execute(p, Options{MaxCallDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.BoundExceeded != 1 {
		t.Fatalf("BoundExceeded = %d, want 1", res.Metrics.BoundExceeded)
	}
	if res.Metrics.Paths != 0 {
		t.Fatal("truncated path must not count as completed")
	}
	if len(res.Violations) != 0 {
		t.Fatal("truncated path must not run final checks")
	}
}

func TestMakeSymbolicFreshness(t *testing.T) {
	// Two MakeSymbolics of the same variable are independent values.
	p := model.NewProgram()
	p.AddGlobal("v", 8, false, 0)
	p.AddGlobal("first", 8, false, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.MakeSymbolic{Var: "v", Hint: "v"},
		&model.Assign{LHS: "first", RHS: &model.Ref{Name: "v"}},
		&model.MakeSymbolic{Var: "v", Hint: "v"},
		// first != v must be satisfiable (fresh value), so asserting
		// first == v must be violated.
		&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpEq,
			X: &model.Ref{Name: "first"}, Y: &model.Ref{Name: "v"}}},
	}})
	p.Entry = []string{"main"}
	p.Asserts = []*model.AssertInfo{{ID: 0}}
	res, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatal("re-made symbolic value should be fresh")
	}
	m := res.Violations[0].Model
	if m["v#1"] == m["v#2"] {
		t.Fatalf("model should distinguish the two symbolics: %v", m)
	}
}

func TestMaxPathsExhausts(t *testing.T) {
	res, err := Execute(chainModel(6), Options{MaxPaths: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Metrics.Paths != 5 {
		t.Fatalf("exhausted=%v paths=%d", res.Exhausted, res.Metrics.Paths)
	}
}

func TestDeadlineExhausts(t *testing.T) {
	res, err := Execute(chainModel(16), Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatal("past deadline should exhaust immediately")
	}
}

func TestInitialConstraints(t *testing.T) {
	p := chainModel(3)
	// Constrain in == 0: exactly one path remains.
	res, err := Execute(p, Options{InitialConstraints: []model.Expr{
		&model.Bin{Op: model.OpEq, X: &model.Ref{Name: "in"}, Y: &model.Const{Width: 8, Val: 0}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Paths != 1 {
		t.Fatalf("paths = %d, want 1", res.Metrics.Paths)
	}
	// An unsatisfiable seed yields zero paths.
	res2, err := Execute(p, Options{InitialConstraints: []model.Expr{
		&model.Const{Width: 1, Val: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.Paths != 0 {
		t.Fatal("unsat seed should yield no paths")
	}
}

func TestOptModeSameResults(t *testing.T) {
	p := chainModel(5)
	plain, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Execute(p, Options{Opt: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics.Paths != opt.Metrics.Paths {
		t.Fatalf("Opt changed path count: %d vs %d", plain.Metrics.Paths, opt.Metrics.Paths)
	}
	if opt.Metrics.Solver.Queries > plain.Metrics.Solver.Queries {
		t.Fatalf("Opt should not add solver queries: %d vs %d",
			opt.Metrics.Solver.Queries, plain.Metrics.Solver.Queries)
	}
}

func TestFormatModelDeterministic(t *testing.T) {
	m := map[string]uint64{"b": 2, "a": 1, "c": 3}
	if FormatModel(m) != "a=0x1 b=0x2 c=0x3" {
		t.Fatalf("FormatModel = %q", FormatModel(m))
	}
}
