package sym

import (
	"fmt"
	"testing"

	"p4assert/internal/model"
)

// TestSymbolicEvalOperatorMatrix pins the symbolic inputs with initial
// constraints and asserts the expected concrete result for every IR
// operator: any divergence between the symbolic evaluator's semantics and
// direct Go arithmetic at width 8 surfaces as a violation. This is the
// symbolic twin of the interpreter's operator matrix, so the two engines
// are tested against the same reference semantics.
func TestSymbolicEvalOperatorMatrix(t *testing.T) {
	b2u := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	mk := func(op model.Op) model.Expr {
		return &model.Bin{Op: op, X: &model.Ref{Name: "a"}, Y: &model.Ref{Name: "b"}}
	}
	cases := []struct {
		name string
		expr model.Expr
		want func(a, b uint64) uint64
	}{
		{"add", mk(model.OpAdd), func(a, b uint64) uint64 { return (a + b) & 0xff }},
		{"sub", mk(model.OpSub), func(a, b uint64) uint64 { return (a - b) & 0xff }},
		{"mul", mk(model.OpMul), func(a, b uint64) uint64 { return (a * b) & 0xff }},
		{"div", mk(model.OpDiv), func(a, b uint64) uint64 {
			if b == 0 {
				return 0xff
			}
			return a / b
		}},
		{"mod", mk(model.OpMod), func(a, b uint64) uint64 {
			if b == 0 {
				return a
			}
			return a % b
		}},
		{"and", mk(model.OpAnd), func(a, b uint64) uint64 { return a & b }},
		{"or", mk(model.OpOr), func(a, b uint64) uint64 { return a | b }},
		{"xor", mk(model.OpXor), func(a, b uint64) uint64 { return a ^ b }},
		{"shl", mk(model.OpShl), func(a, b uint64) uint64 {
			if b >= 8 {
				return 0
			}
			return (a << b) & 0xff
		}},
		{"shr", mk(model.OpShr), func(a, b uint64) uint64 {
			if b >= 8 {
				return 0
			}
			return a >> b
		}},
		{"lt", mk(model.OpLt), func(a, b uint64) uint64 { return b2u(a < b) }},
		{"ge", mk(model.OpGe), func(a, b uint64) uint64 { return b2u(a >= b) }},
		{"land", mk(model.OpLAnd), func(a, b uint64) uint64 { return b2u(a != 0 && b != 0) }},
		{"bitnot", &model.Un{Op: model.OpBitNot, X: &model.Ref{Name: "a"}},
			func(a, b uint64) uint64 { return ^a & 0xff }},
		{"neg", &model.Un{Op: model.OpNeg, X: &model.Ref{Name: "a"}},
			func(a, b uint64) uint64 { return (-a) & 0xff }},
	}
	inputs := [][2]uint64{{0, 0}, {1, 0}, {7, 3}, {200, 100}, {255, 255}, {16, 9}, {5, 0}}
	for _, tc := range cases {
		for _, in := range inputs {
			p := model.NewProgram()
			p.AddGlobal("a", 8, true, 0)
			p.AddGlobal("b", 8, true, 0)
			p.AddGlobal("r", 8, false, 0)
			want := tc.want(in[0], in[1]) & 0xff
			p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
				&model.Assign{LHS: "r", RHS: tc.expr},
				&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpEq,
					X: &model.Ref{Name: "r"}, Y: &model.Const{Width: 8, Val: want}}},
			}})
			p.Entry = []string{"main"}
			p.Asserts = []*model.AssertInfo{{ID: 0, Source: fmt.Sprintf("%s(%d,%d)==%d", tc.name, in[0], in[1], want)}}
			res, err := Execute(p, Options{InitialConstraints: []model.Expr{
				&model.Bin{Op: model.OpEq, X: &model.Ref{Name: "a"}, Y: &model.Const{Width: 8, Val: in[0]}},
				&model.Bin{Op: model.OpEq, X: &model.Ref{Name: "b"}, Y: &model.Const{Width: 8, Val: in[1]}},
			}})
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("%s(%d,%d): symbolic evaluator disagrees with reference (want %d)",
					tc.name, in[0], in[1], want)
			}
		}
	}
}
