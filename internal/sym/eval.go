package sym

import (
	"fmt"

	"p4assert/internal/bv"
	"p4assert/internal/model"
)

// eval lowers a model-IR expression to a bitvector value under the state's
// store. Width coercion rules:
//
//   - arithmetic/bitwise/shift: the right operand is resized to the left
//     operand's width, which is the result width;
//   - comparisons: both operands widen to the larger width (so an untyped
//     32-bit literal compared with an 8-bit field cannot be silently
//     truncated into a spurious equality); result width 1;
//   - logical operators and conditions: operands coerce to truth values
//     (non-zero test), per the assertion-language semantics.
func (ex *executor) eval(e model.Expr, st *state) (*bv.Expr, error) {
	c := ex.ctx
	switch x := e.(type) {
	case *model.Const:
		return c.Const(x.Width, x.Val), nil

	case *model.Ref:
		v, ok := st.store[x.Name]
		if !ok {
			return nil, fmt.Errorf("sym: read of unknown global %s", x.Name)
		}
		return v, nil

	case *model.Cast:
		v, err := ex.eval(x.X, st)
		if err != nil {
			return nil, err
		}
		return c.Resize(v, x.Width), nil

	case *model.Un:
		v, err := ex.eval(x.X, st)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case model.OpNot:
			return c.Not(c.NonZero(v)), nil
		case model.OpBitNot:
			return c.Not(v), nil
		case model.OpNeg:
			return c.Sub(c.Const(v.Width, 0), v), nil
		}
		return nil, fmt.Errorf("sym: bad unary op %v", x.Op)

	case *model.Cond:
		cond, err := ex.eval(x.C, st)
		if err != nil {
			return nil, err
		}
		tv, err := ex.eval(x.T, st)
		if err != nil {
			return nil, err
		}
		fv, err := ex.eval(x.F, st)
		if err != nil {
			return nil, err
		}
		w := tv.Width
		if fv.Width > w {
			w = fv.Width
		}
		return c.Ite(c.NonZero(cond), c.Resize(tv, w), c.Resize(fv, w)), nil

	case *model.Bin:
		a, err := ex.eval(x.X, st)
		if err != nil {
			return nil, err
		}
		b, err := ex.eval(x.Y, st)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case model.OpLAnd:
			return c.And(c.NonZero(a), c.NonZero(b)), nil
		case model.OpLOr:
			return c.Or(c.NonZero(a), c.NonZero(b)), nil
		case model.OpEq, model.OpNe, model.OpLt, model.OpLe, model.OpGt, model.OpGe:
			w := a.Width
			if b.Width > w {
				w = b.Width
			}
			a, b = c.Resize(a, w), c.Resize(b, w)
			switch x.Op {
			case model.OpEq:
				return c.Eq(a, b), nil
			case model.OpNe:
				return c.Ne(a, b), nil
			case model.OpLt:
				return c.Ult(a, b), nil
			case model.OpLe:
				return c.Ule(a, b), nil
			case model.OpGt:
				return c.Ugt(a, b), nil
			default:
				return c.Uge(a, b), nil
			}
		}
		b = c.Resize(b, a.Width)
		switch x.Op {
		case model.OpAdd:
			return c.Add(a, b), nil
		case model.OpSub:
			return c.Sub(a, b), nil
		case model.OpMul:
			return c.Mul(a, b), nil
		case model.OpDiv:
			return c.UDiv(a, b), nil
		case model.OpMod:
			return c.UMod(a, b), nil
		case model.OpAnd:
			return c.And(a, b), nil
		case model.OpOr:
			return c.Or(a, b), nil
		case model.OpXor:
			return c.Xor(a, b), nil
		case model.OpShl:
			return c.Shl(a, b), nil
		case model.OpShr:
			return c.Lshr(a, b), nil
		}
		return nil, fmt.Errorf("sym: bad binary op %v", x.Op)
	}
	return nil, fmt.Errorf("sym: unknown expression %T", e)
}
