// Package sym is the symbolic execution engine for verification models
// (internal/model): the role KLEE plays in the paper's prototype (§3.3).
//
// Every path through the model is explored. Packet header fields and other
// inputs are symbolic bitvectors (internal/bv); branch conditions accumulate
// into per-path constraint sets whose feasibility the solver stack
// (internal/solver) decides eagerly, pruning infeasible paths. Assertion
// checks ask the solver for an input violating the assertion under the path
// condition; a satisfying model becomes the reported counterexample packet.
//
// The executor also implements the paper's measurement hooks: executed
// instruction counts (§5.5 metric ii) and path statistics.
package sym

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"p4assert/internal/bv"
	"p4assert/internal/model"
	"p4assert/internal/solver"
)

// Options configures an execution.
type Options struct {
	// Ctx, when non-nil, cancels exploration early: Execute returns
	// Ctx.Err() as soon as cancellation is observed (checked at the same
	// cadence as Deadline). A nil Ctx means no cancellation.
	Ctx context.Context
	// MaxCallDepth bounds recursive function activation (parser loops such
	// as MRI's). Paths exceeding it terminate with BoundExceeded.
	// 0 means the default of 8.
	MaxCallDepth int
	// MaxPaths aborts exploration after this many completed paths
	// (0 = unlimited). The result is then marked Exhausted.
	MaxPaths int64
	// Deadline, when non-zero, aborts exploration at that time.
	Deadline time.Time
	// Opt enables executor-level optimizations analogous to KLEE's
	// --optimize flag: counterexample-model reuse to skip solver calls and
	// path-constraint deduplication.
	Opt bool
	// InitialConstraints seeds every path with extra assumptions; the
	// submodel parallelization (internal/submodel) uses this.
	InitialConstraints []model.Expr
	// SkipChecks disables assertion checking (used by slicing criteria
	// probes); violations are then never reported.
	SkipChecks bool
	// CollectTests records one concrete input assignment per completed
	// path (the paper's §6 "ongoing work": systematic test-case
	// generation, p4pktgen's role). Results appear in Result.Tests.
	CollectTests bool
	// Solver configures the solver acceleration subsystem (incremental
	// sessions, normalized memo, portfolio racing). The zero value
	// enables everything; acceleration never changes reported results.
	Solver solver.Config
	// SolverMemo, when non-nil, is a run-wide normalized memo shared
	// across executors (the parallel submodels of one verification run),
	// a second lookup tier behind each Checker's private memo.
	SolverMemo *solver.Memo
}

// PathTest is one generated test case: a concrete input driving the
// program down one specific path.
type PathTest struct {
	// Inputs assigns every symbolic input the path constrains; variables
	// not listed are free (zero works).
	Inputs map[string]uint64
	// Trace lists the fork decisions of the path.
	Trace []string
	// Outcome is the expected observable behaviour of the path under
	// Inputs, computed by concretizing the final symbolic state. It is the
	// symbolic engine's half of the differential oracle: an independent
	// concrete run (internal/interp) of the same inputs must reproduce it
	// exactly.
	Outcome PathOutcome
}

// PathOutcome is the externally observable result of one execution path
// under a concrete input: the facts the differential oracle compares
// between the symbolic engine and the concrete interpreter.
type PathOutcome struct {
	// Halted reports parser rejection.
	Halted bool
	// Forward is the final value of the $forward flag (0 if the model
	// defines none).
	Forward uint64
	// Egress is the final value of the *.egress_spec global (0 if none).
	Egress uint64
	// Failures lists the assertion IDs whose checks evaluate false on this
	// path under Inputs, sorted and deduplicated.
	Failures []int
}

// Digest renders the outcome canonically for comparison and reporting.
func (o PathOutcome) Digest() string {
	return fmt.Sprintf("halt=%t fwd=0x%x egress=0x%x fail=%v",
		o.Halted, o.Forward, o.Egress, o.Failures)
}

// NormalizeFailures sorts and deduplicates a failure list in place,
// returning the normalized slice. Both engines apply it before digesting so
// repeated checks of one assertion (parser loops) compare equal.
func NormalizeFailures(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// EgressGlobal returns the name of the model's egress-port global
// (suffix ".egress_spec"), or "" when the model defines none.
func EgressGlobal(p *model.Program) string {
	for _, g := range p.Globals {
		if strings.HasSuffix(g.Name, ".egress_spec") {
			return g.Name
		}
	}
	return ""
}

// Violation aggregates the failures of one assertion across paths.
type Violation struct {
	AssertID int
	Info     *model.AssertInfo
	// Count is how many paths violated the assertion.
	Count int64
	// Model is a satisfying input assignment from the first violating
	// path: the counterexample packet.
	Model map[string]uint64
	// Trace is the fork trace of the first violating path.
	Trace []string
}

// Metrics reports execution effort.
type Metrics struct {
	Paths            int64 // completed paths
	KilledInfeasible int64 // paths pruned by the solver
	BoundExceeded    int64 // paths cut by the call-depth bound
	Instructions     int64 // model statements executed
	Forks            int64
	AssertChecks     int64 // assertion check sites evaluated
	// MaxFrontier is the peak size of the DFS worklist: how many
	// suspended states coexisted at the widest point of exploration (the
	// executor's memory high-water mark, in states).
	MaxFrontier int64
	Solver      solver.Stats
}

// Result is the outcome of Execute.
type Result struct {
	Violations []*Violation
	Metrics    Metrics
	// Tests holds one generated test case per completed path when
	// Options.CollectTests is set.
	Tests []PathTest
	// Exhausted reports that MaxPaths or Deadline stopped exploration
	// before all paths were covered.
	Exhausted bool
}

// Violated reports whether the given assertion ID failed on any path.
func (r *Result) Violated(id int) bool {
	for _, v := range r.Violations {
		if v.AssertID == id {
			return true
		}
	}
	return false
}

// frame is one activation record; block frames are nested statement lists
// within the same function activation.
type frame struct {
	fn      string
	body    []model.Stmt
	ip      int
	isBlock bool
}

// state is one execution path's state.
type state struct {
	store    map[string]*bv.Expr
	pc       []*bv.Expr
	frames   []frame
	entryIdx int
	halted   bool // parser reject: skip remaining pipeline blocks
	trace    []string
	depth    map[string]int
	// symCnt numbers fresh symbolic values along this path per hint, so
	// the k-th MakeSymbolic of a given hint always gets the same name
	// ("hint#k") regardless of exploration order or what other hints were
	// drawn in between. Per-hint (rather than path-global) numbering makes
	// the names portable across program versions: when two composed models
	// extract the same field (internal/equiv), their k-th draws share one
	// symbolic variable — the same packet byte.
	symCnt map[string]int
	// lastModel caches a satisfying assignment for pc (Opt mode).
	lastModel map[string]uint64
	// checks records every assertion condition evaluated along the path
	// (CollectTests only): concretizing them under the test inputs yields
	// the path's expected assertion verdicts.
	checks []pathCheck
}

// pathCheck is one AssertCheck evaluation site on a path.
type pathCheck struct {
	id   int
	cond *bv.Expr
}

func (s *state) clone() *state {
	n := &state{
		store:     make(map[string]*bv.Expr, len(s.store)),
		pc:        append([]*bv.Expr(nil), s.pc...),
		frames:    make([]frame, len(s.frames)),
		entryIdx:  s.entryIdx,
		halted:    s.halted,
		trace:     append([]string(nil), s.trace...),
		depth:     make(map[string]int, len(s.depth)),
		lastModel: s.lastModel,
		checks:    s.checks[:len(s.checks):len(s.checks)],
	}
	for k, v := range s.store {
		n.store[k] = v
	}
	copy(n.frames, s.frames)
	for k, v := range s.depth {
		n.depth[k] = v
	}
	if len(s.symCnt) > 0 {
		n.symCnt = make(map[string]int, len(s.symCnt))
		for k, v := range s.symCnt {
			n.symCnt[k] = v
		}
	}
	return n
}

type executor struct {
	p       *model.Program
	opts    Options
	ctx     *bv.Context
	chk     *solver.Checker
	met     Metrics
	byID    map[int]*Violation
	ordered []*Violation
	tests   []PathTest
	// egress caches the model's egress-port global name (CollectTests).
	egress string
}

// Execute symbolically runs the program over all paths.
func Execute(p *model.Program, opts Options) (*Result, error) {
	if opts.MaxCallDepth == 0 {
		opts.MaxCallDepth = 8
	}
	ctx := bv.NewContext()
	ex := &executor{
		p:    p,
		opts: opts,
		ctx:  ctx,
		chk:  solver.New(ctx),
		byID: map[int]*Violation{},
	}
	ex.chk.Cfg = opts.Solver
	ex.chk.Shared = opts.SolverMemo
	if opts.CollectTests {
		ex.egress = EgressGlobal(p)
	}

	init := &state{
		store: make(map[string]*bv.Expr, len(p.Globals)),
		depth: map[string]int{},
	}
	for _, g := range p.Globals {
		if g.Symbolic {
			init.store[g.Name] = ctx.Var(g.Name, g.Width)
		} else {
			init.store[g.Name] = ctx.Const(g.Width, g.Init)
		}
	}
	for _, c := range opts.InitialConstraints {
		v, err := ex.eval(c, init)
		if err != nil {
			return nil, err
		}
		init.pc = append(init.pc, ex.ctx.NonZero(v))
	}
	if len(init.pc) > 0 {
		res := ex.chk.Check(init.pc)
		if !res.Sat {
			// The submodel's assumption is itself infeasible: no paths.
			return &Result{Metrics: ex.met}, nil
		}
		init.lastModel = res.Model
	}

	stack := []*state{init}
	ex.met.MaxFrontier = 1
	exhausted := false
	for len(stack) > 0 {
		if opts.MaxPaths > 0 && ex.met.Paths >= opts.MaxPaths {
			exhausted = true
			break
		}
		if !opts.Deadline.IsZero() && ex.met.Instructions%4096 == 0 && time.Now().After(opts.Deadline) {
			exhausted = true
			break
		}
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		forks, err := ex.run(st)
		if err != nil {
			return nil, err
		}
		// Push forks in reverse for in-order DFS.
		for i := len(forks) - 1; i >= 0; i-- {
			stack = append(stack, forks[i])
		}
		if n := int64(len(stack)); n > ex.met.MaxFrontier {
			ex.met.MaxFrontier = n
		}
	}
	ex.met.Solver = ex.chk.Stats
	return &Result{Violations: ex.ordered, Metrics: ex.met, Tests: ex.tests, Exhausted: exhausted}, nil
}

// collectTest solves the completed path's constraints into one concrete
// input assignment and concretizes the path's observable outcome under it.
func (ex *executor) collectTest(st *state) {
	var inputs map[string]uint64
	if st.lastModel != nil && allSat(st.pc, st.lastModel) {
		inputs = st.lastModel
	} else {
		res := ex.chk.Check(st.pc)
		if !res.Sat {
			return // cannot happen for eagerly-pruned paths
		}
		inputs = res.Model
	}
	cp := make(map[string]uint64, len(inputs))
	for k, v := range inputs {
		cp[k] = v
	}
	out := PathOutcome{Halted: st.halted}
	if v, ok := st.store[model.ForwardFlag]; ok {
		out.Forward = bv.Eval(v, cp)
	}
	if ex.egress != "" {
		if v, ok := st.store[ex.egress]; ok {
			out.Egress = bv.Eval(v, cp)
		}
	}
	for _, c := range st.checks {
		if bv.Eval(c.cond, cp) == 0 {
			out.Failures = append(out.Failures, c.id)
		}
	}
	out.Failures = NormalizeFailures(out.Failures)
	ex.tests = append(ex.tests, PathTest{Inputs: cp, Trace: append([]string(nil), st.trace...), Outcome: out})
}

func allSat(pc []*bv.Expr, env map[string]uint64) bool {
	for _, c := range pc {
		if bv.Eval(c, env) != 1 {
			return false
		}
	}
	return true
}

// run executes st until it completes, dies, or forks; forked successor
// states are returned.
func (ex *executor) run(st *state) ([]*state, error) {
	for {
		// Refill frames from the entry sequence.
		for len(st.frames) == 0 {
			if st.entryIdx >= len(ex.p.Entry) {
				ex.met.Paths++
				if ex.opts.CollectTests {
					ex.collectTest(st)
				}
				return nil, nil // path complete
			}
			name := ex.p.Entry[st.entryIdx]
			st.entryIdx++
			if st.halted && name != "$checks" {
				continue // rejected packets skip the pipeline blocks
			}
			fn, ok := ex.p.Funcs[name]
			if !ok {
				return nil, fmt.Errorf("sym: entry function %s not found", name)
			}
			st.frames = append(st.frames, frame{fn: name, body: fn.Body})
		}

		fr := &st.frames[len(st.frames)-1]
		if fr.ip >= len(fr.body) {
			if !fr.isBlock {
				st.depth[fr.fn]--
			}
			st.frames = st.frames[:len(st.frames)-1]
			continue
		}
		stmt := fr.body[fr.ip]
		fr.ip++
		ex.met.Instructions++

		switch s := stmt.(type) {
		case *model.Assign:
			v, err := ex.eval(s.RHS, st)
			if err != nil {
				return nil, err
			}
			g, ok := ex.p.Global(s.LHS)
			if !ok {
				return nil, fmt.Errorf("sym: assignment to unknown global %s", s.LHS)
			}
			st.store[s.LHS] = ex.ctx.Resize(v, g.Width)

		case *model.MakeSymbolic:
			g, ok := ex.p.Global(s.Var)
			if !ok {
				return nil, fmt.Errorf("sym: make_symbolic of unknown global %s", s.Var)
			}
			if st.symCnt == nil {
				st.symCnt = map[string]int{}
			}
			st.symCnt[s.Hint]++
			name := fmt.Sprintf("%s#%d", s.Hint, st.symCnt[s.Hint])
			st.store[s.Var] = ex.ctx.Var(name, g.Width)

		case *model.If:
			cond, err := ex.eval(s.Cond, st)
			if err != nil {
				return nil, err
			}
			cond = ex.ctx.NonZero(cond)
			if cond.IsTrue() {
				ex.pushBody(st, fr.fn, s.Then)
				continue
			}
			if cond.IsFalse() {
				ex.pushBody(st, fr.fn, s.Else)
				continue
			}
			ex.met.Forks++
			var out []*state
			if thenSt := ex.constrain(st.clone(), cond); thenSt != nil {
				ex.pushBody(thenSt, fr.fn, s.Then)
				out = append(out, thenSt)
			}
			if elseSt := ex.constrain(st, ex.ctx.Not(cond)); elseSt != nil {
				ex.pushBody(elseSt, fr.fn, s.Else)
				out = append(out, elseSt)
			}
			return out, nil

		case *model.Fork:
			ex.met.Forks++
			out := make([]*state, 0, len(s.Branches))
			for i := range s.Branches {
				var br *state
				if i == len(s.Branches)-1 {
					br = st
				} else {
					br = st.clone()
				}
				label := ""
				if i < len(s.Labels) {
					label = s.Labels[i]
				}
				br.trace = append(br.trace, fmt.Sprintf("%s=%s", s.Selector, label))
				ex.pushBody(br, fr.fn, s.Branches[i])
				out = append(out, br)
			}
			return out, nil

		case *model.Call:
			fn, ok := ex.p.Funcs[s.Func]
			if !ok {
				return nil, fmt.Errorf("sym: call to unknown function %s", s.Func)
			}
			if st.depth[s.Func] >= ex.opts.MaxCallDepth {
				// Loop bound hit (recursive parser): the execution is
				// truncated, so the path is killed outright — its final
				// state is not meaningful and is not checked, as with a
				// KLEE state killed early.
				ex.met.BoundExceeded++
				return nil, nil
			}
			st.depth[s.Func]++
			st.frames = append(st.frames, frame{fn: s.Func, body: fn.Body})

		case *model.Assume:
			v, err := ex.eval(s.Cond, st)
			if err != nil {
				return nil, err
			}
			cond := ex.ctx.NonZero(v)
			if cond.IsTrue() {
				continue
			}
			next := ex.constrain(st, cond)
			if next == nil {
				return nil, nil // assumption unsatisfiable: silently drop path
			}
			continue

		case *model.AssertCheck:
			if ex.opts.SkipChecks {
				continue
			}
			ex.met.AssertChecks++
			v, err := ex.eval(s.Cond, st)
			if err != nil {
				return nil, err
			}
			cond := ex.ctx.NonZero(v)
			if ex.opts.CollectTests {
				st.checks = append(st.checks, pathCheck{id: s.ID, cond: cond})
			}
			if cond.IsTrue() {
				continue
			}
			neg := ex.ctx.Not(cond)
			res := ex.chk.Check(append(append([]*bv.Expr(nil), st.pc...), neg))
			if res.Sat {
				ex.recordViolation(s.ID, res.Model, st.trace)
				// Continue exploring the passing side, if any, so later
				// assertions on this path are still checked.
				if passSt := ex.constrain(st, cond); passSt == nil {
					return nil, nil
				}
				continue
			}
			// Assertion holds on every input reaching here.

		case *model.Return:
			// Pop block frames up to and including the function frame.
			for len(st.frames) > 0 {
				top := st.frames[len(st.frames)-1]
				st.frames = st.frames[:len(st.frames)-1]
				if !top.isBlock {
					st.depth[top.fn]--
					break
				}
			}

		case *model.Exit:
			// P4 exit: terminate all blocks of the current pipeline stage.
			st.frames = st.frames[:0]
			st.depth = map[string]int{}

		case *model.Halt:
			// Parser reject: skip the pipeline, keep final checks.
			st.frames = st.frames[:0]
			st.depth = map[string]int{}
			st.halted = true

		case *model.TraceNote:
			st.trace = append(st.trace, s.Label)

		case *model.ResetDraws:
			// Restart per-hint input numbering: subsequent draws re-yield
			// the hash-consed variables of the first sequence, which is how
			// composed differential models share one symbolic packet.
			st.symCnt = nil

		default:
			return nil, fmt.Errorf("sym: unknown statement %T", stmt)
		}
	}
}

// pushBody enters a nested statement list within the same function.
func (ex *executor) pushBody(st *state, fn string, body []model.Stmt) {
	if len(body) == 0 {
		return
	}
	st.frames = append(st.frames, frame{fn: fn, body: body, isBlock: true})
}

// constrain adds cond to the path condition, returning nil if the path
// becomes infeasible.
func (ex *executor) constrain(st *state, cond *bv.Expr) *state {
	if cond.IsTrue() {
		return st
	}
	if cond.IsFalse() {
		ex.met.KilledInfeasible++
		return nil
	}
	st.pc = append(st.pc, cond)
	if ex.opts.Opt {
		// Counterexample reuse: if the previous model still satisfies the
		// new constraint, the path is SAT without consulting the solver.
		if st.lastModel != nil && bv.Eval(cond, st.lastModel) == 1 {
			return st
		}
		// Deduplicate syntactically repeated constraints.
		for _, c := range st.pc[:len(st.pc)-1] {
			if c == cond {
				st.pc = st.pc[:len(st.pc)-1]
				return st
			}
		}
	}
	res := ex.chk.Check(st.pc)
	if !res.Sat {
		ex.met.KilledInfeasible++
		return nil
	}
	st.lastModel = res.Model
	return st
}

func (ex *executor) recordViolation(id int, m map[string]uint64, trace []string) {
	v, ok := ex.byID[id]
	if !ok {
		var info *model.AssertInfo
		if id >= 0 && id < len(ex.p.Asserts) {
			info = ex.p.Asserts[id]
		}
		v = &Violation{
			AssertID: id,
			Info:     info,
			Model:    m,
			Trace:    append([]string(nil), trace...),
		}
		ex.byID[id] = v
		ex.ordered = append(ex.ordered, v)
	}
	v.Count++
}

// FormatModel renders a counterexample assignment deterministically.
func FormatModel(m map[string]uint64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=0x%x", k, m[k])
	}
	return strings.Join(parts, " ")
}
