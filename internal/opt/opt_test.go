package opt

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"p4assert/internal/interp"
	"p4assert/internal/model"
	"p4assert/internal/p4"
	"p4assert/internal/sym"
	"p4assert/internal/translate"
	"p4assert/internal/whippersnapper"
)

func translateWS(t *testing.T, cfg whippersnapper.Config) *model.Program {
	t.Helper()
	src := whippersnapper.Generate(cfg)
	prog, err := p4.Parse("ws.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Check(); err != nil {
		t.Fatal(err)
	}
	m, err := translate.Translate(prog, translate.Options{Rules: whippersnapper.GenerateRules(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestO3ReducesInstructions(t *testing.T) {
	m := translateWS(t, whippersnapper.Config{Tables: 4, Assertions: 2})
	o := Apply(m, O3())
	if o.NumStmts() >= m.NumStmts() {
		t.Fatalf("O3 should shrink the model statically: %d -> %d", m.NumStmts(), o.NumStmts())
	}
	// Dynamic effect: fewer executed instructions, same paths.
	r1, err := sym.Execute(m, sym.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sym.Execute(o, sym.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Metrics.Paths != r1.Metrics.Paths {
		t.Fatalf("O3 changed path count: %d vs %d", r2.Metrics.Paths, r1.Metrics.Paths)
	}
	if r2.Metrics.Instructions >= r1.Metrics.Instructions {
		t.Fatalf("O3 should reduce executed instructions: %d vs %d",
			r2.Metrics.Instructions, r1.Metrics.Instructions)
	}
	if len(r1.Violations) != 0 || len(r2.Violations) != 0 {
		t.Fatal("synthetic program should verify in both forms")
	}
}

func TestChainCompaction(t *testing.T) {
	cfg := whippersnapper.Config{Tables: 1, RulesPerTable: 8}
	m := translateWS(t, cfg)
	o := Apply(m, Passes{ChainCompact: true})
	dump := o.Dump()
	if !strings.Contains(dump, "switch (symbolic $match)") {
		t.Fatalf("rule cascade should compact into a fork:\n%s", dump)
	}
	// Verdict and coverage must be preserved: rules+1 outcomes.
	r1, _ := sym.Execute(m, sym.Options{})
	r2, _ := sym.Execute(o, sym.Options{})
	if r1.Metrics.Paths != r2.Metrics.Paths {
		t.Fatalf("compaction changed path count: %d vs %d", r1.Metrics.Paths, r2.Metrics.Paths)
	}
	// Compaction exists to shrink constraint sets: the compacted run must
	// not issue more solver queries than the cascade.
	if r2.Metrics.Solver.Queries > r1.Metrics.Solver.Queries {
		t.Fatalf("compaction increased solver queries: %d vs %d",
			r2.Metrics.Solver.Queries, r1.Metrics.Solver.Queries)
	}
}

func TestChainCompactionPreservesVerdicts(t *testing.T) {
	// A buggy rule-driven program: verdicts must survive compaction.
	src := `
header h_t { bit<16> k; bit<8> ttl; }
struct hs { h_t h; }
struct ms { bit<1> u; }
parser P(packet_in pkt, out hs hdr, inout ms meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout hs hdr, inout ms meta,
          inout standard_metadata_t standard_metadata) {
    action fwd(bit<9> p) { standard_metadata.egress_spec = p; }
    action drop() { mark_to_drop(standard_metadata); }
    table t {
        key = { hdr.h.k : exact; }
        actions = { fwd; drop; }
        default_action = drop;
        const entries = {
            1 : fwd(1);
            2 : fwd(2);
            3 : fwd(3);
            4 : fwd(4);
        }
    }
    apply {
        t.apply();
        @assert("if(forward(), h.ttl > 0)");
    }
}
control D(packet_out pkt, in hs hdr) { apply { } }
V1Switch(P, I, D) main;
`
	prog, err := p4.Parse("cc.p4", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Check(); err != nil {
		t.Fatal(err)
	}
	m, err := translate.Translate(prog, translate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := Apply(m, O3())
	r1, _ := sym.Execute(m, sym.Options{})
	r2, _ := sym.Execute(o, sym.Options{})
	if !r1.Violated(0) || !r2.Violated(0) {
		t.Fatalf("ttl bug must be found in both forms: orig=%v opt=%v",
			r1.Violations, r2.Violations)
	}
}

func TestConstBranchPruning(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("x", 8, true, 0)
	p.AddGlobal("y", 8, false, 0)
	p.AddGlobal("never", 8, false, 42) // no assignments anywhere
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.If{
			// never == 42 folds to true under global-const marking.
			Cond: &model.Bin{Op: model.OpEq, X: &model.Ref{Name: "never"}, Y: &model.Const{Width: 8, Val: 42}},
			Then: []model.Stmt{&model.Assign{LHS: "y", RHS: &model.Ref{Name: "x"}}},
			Else: []model.Stmt{&model.Assign{LHS: "y", RHS: &model.Const{Width: 8, Val: 1}}},
		},
		&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpEq, X: &model.Ref{Name: "y"}, Y: &model.Ref{Name: "x"}}},
	}})
	p.Entry = []string{"main"}
	p.Asserts = []*model.AssertInfo{{ID: 0}}
	o := Apply(p, O3())
	body := o.Funcs["main"].Body
	if _, isIf := body[0].(*model.If); isIf {
		t.Fatalf("constant branch should be pruned:\n%s", o.Dump())
	}
	r, err := sym.Execute(o, sym.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 {
		t.Fatal("pruning changed semantics")
	}
}

func TestDeadCodeElimination(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("x", 8, true, 0)
	p.AddGlobal("dead", 8, false, 0)
	p.AddGlobal("live", 8, false, 0)
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.Assign{LHS: "dead", RHS: &model.Ref{Name: "x"}},
		&model.MakeSymbolic{Var: "dead", Hint: "dead"},
		&model.Assign{LHS: "live", RHS: &model.Ref{Name: "x"}},
		&model.AssertCheck{ID: 0, Cond: &model.Bin{Op: model.OpLe, X: &model.Ref{Name: "live"}, Y: &model.Ref{Name: "live"}}},
	}})
	p.Entry = []string{"main"}
	p.Asserts = []*model.AssertInfo{{ID: 0}}
	o := Apply(p, Passes{DeadCode: true})
	if got := len(o.Funcs["main"].Body); got != 2 {
		t.Fatalf("dead assignments should vanish; body = %d stmts:\n%s", got, o.Dump())
	}
}

func TestEmptyCallRemoval(t *testing.T) {
	p := model.NewProgram()
	p.AddGlobal("x", 8, false, 0)
	p.AddFunc(&model.Func{Name: "empty", Body: nil})
	p.AddFunc(&model.Func{Name: "main", Body: []model.Stmt{
		&model.Call{Func: "empty"},
		&model.Assign{LHS: "x", RHS: &model.Const{Width: 8, Val: 1}},
	}})
	p.Entry = []string{"main"}
	o := Apply(p, O3())
	for _, s := range o.Funcs["main"].Body {
		if c, ok := s.(*model.Call); ok && c.Func == "empty" {
			t.Fatal("call to empty function should be removed")
		}
	}
}

// TestPassesPreserveConcreteSemantics is the DESIGN.md property: for random
// inputs, the interpreter agrees on assertion verdicts and the forwarding
// decision between the original and optimized models. ChainCompact is
// exercised separately (it rewrites cascades into assume-guarded forks,
// which concrete replay resolves differently).
func TestPassesPreserveConcreteSemantics(t *testing.T) {
	passes := Passes{ConstFold: true, GlobalConst: true, DeadCode: true, Simplify: true}
	for _, cfg := range []whippersnapper.Config{
		{Tables: 2, Assertions: 2},
		{Tables: 3, ActionsFirst: 2, Actions: 2, Assertions: 1},
		{Tables: 2, RulesPerTable: 3, Assertions: 2},
	} {
		m := translateWS(t, cfg)
		o := Apply(m, passes)
		for seed := 0; seed < 25; seed++ {
			in := func(name string, width int) uint64 {
				base := name
				if i := strings.IndexByte(base, '#'); i >= 0 {
					base = base[:i]
				}
				h := fnv.New64a()
				fmt.Fprintf(h, "%s|%d", base, seed)
				return h.Sum64()
			}
			choose := func(selector string, labels []string) int {
				h := fnv.New64a()
				fmt.Fprintf(h, "%s|%d", selector, seed)
				return int(h.Sum64() % uint64(len(labels)))
			}
			r1, err := interp.Run(m, interp.Options{Input: in, Choose: choose})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := interp.Run(o, interp.Options{Input: in, Choose: choose})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(r1.Failures) != fmt.Sprint(r2.Failures) {
				t.Fatalf("cfg %+v seed %d: failures diverge: %v vs %v",
					cfg, seed, r1.Failures, r2.Failures)
			}
			if r1.Store[model.ForwardFlag] != r2.Store[model.ForwardFlag] {
				t.Fatalf("cfg %+v seed %d: forwarding decision diverges", cfg, seed)
			}
			if r1.AssumeViolated != r2.AssumeViolated || r1.Halted != r2.Halted {
				t.Fatalf("cfg %+v seed %d: control outcome diverges", cfg, seed)
			}
		}
	}
}
