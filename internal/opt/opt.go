// Package opt implements ahead-of-time optimization passes over the model
// IR, standing in for the LLVM -O3 pipeline the paper applies to its C
// models (§4.3): constant folding and propagation, global-constant marking,
// dead-code elimination, control-flow simplification, and match-chain
// compaction (the cascading if-else optimization the paper credits for
// turning Fig. 10(c)'s exponential growth linear).
package opt

import (
	"fmt"

	"p4assert/internal/model"
)

// Passes selects which passes Apply runs.
type Passes struct {
	ConstFold    bool // fold constant subexpressions
	GlobalConst  bool // replace never-reassigned globals with their initializers
	ChainCompact bool // rewrite same-key if-else cascades into assume-guarded forks
	DeadCode     bool // remove assignments to never-read globals
	Simplify     bool // prune constant branches and empty structures
}

// O3 is the full pass set, mirroring the paper's -O3 usage.
func O3() Passes {
	return Passes{ConstFold: true, GlobalConst: true, ChainCompact: true, DeadCode: true, Simplify: true}
}

// Apply runs the selected passes over a clone of p and returns the
// optimized program; p itself is not modified.
func Apply(p *model.Program, passes Passes) *model.Program {
	q := p.Clone()
	o := &optimizer{p: q}
	// Two rounds: DCE exposes more constant branches and vice versa.
	for round := 0; round < 2; round++ {
		if passes.GlobalConst {
			o.globalConsts()
		}
		if passes.ConstFold || passes.GlobalConst {
			o.rewriteAll(o.foldExpr)
		}
		if passes.ChainCompact {
			o.chainCompact()
		}
		if passes.Simplify {
			o.simplifyAll()
		}
		if passes.DeadCode {
			o.deadCode()
		}
		if passes.Simplify {
			o.dropEmptyCalls()
		}
	}
	return q
}

type optimizer struct {
	p         *model.Program
	constGlob map[string]*model.Const
}

// ------------------------------------------------------- global constants --

// globalConsts finds non-symbolic globals that are never assigned (nor made
// symbolic) anywhere and records them as constants.
func (o *optimizer) globalConsts() {
	assigned := map[string]bool{}
	var scan func(body []model.Stmt)
	scan = func(body []model.Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *model.Assign:
				assigned[st.LHS] = true
			case *model.MakeSymbolic:
				assigned[st.Var] = true
			case *model.If:
				scan(st.Then)
				scan(st.Else)
			case *model.Fork:
				for _, b := range st.Branches {
					scan(b)
				}
			}
		}
	}
	for _, f := range o.p.Funcs {
		scan(f.Body)
	}
	o.constGlob = map[string]*model.Const{}
	for _, g := range o.p.Globals {
		if !g.Symbolic && !assigned[g.Name] {
			o.constGlob[g.Name] = &model.Const{Width: g.Width, Val: g.Init}
		}
	}
}

// ------------------------------------------------------------- expression --

// foldExpr rewrites an expression bottom-up, substituting known-constant
// globals and folding constant operations.
func (o *optimizer) foldExpr(e model.Expr) model.Expr {
	switch x := e.(type) {
	case *model.Const:
		return x
	case *model.Ref:
		if c, ok := o.constGlob[x.Name]; ok {
			return c
		}
		return x
	case *model.Un:
		inner := o.foldExpr(x.X)
		if c, ok := inner.(*model.Const); ok {
			switch x.Op {
			case model.OpNot:
				return boolConst(c.Val == 0)
			case model.OpBitNot:
				return &model.Const{Width: c.Width, Val: ^c.Val & mask(c.Width)}
			case model.OpNeg:
				return &model.Const{Width: c.Width, Val: (-c.Val) & mask(c.Width)}
			}
		}
		return &model.Un{Op: x.Op, X: inner}
	case *model.Cast:
		inner := o.foldExpr(x.X)
		if c, ok := inner.(*model.Const); ok {
			return &model.Const{Width: x.Width, Val: c.Val & mask(x.Width)}
		}
		if c, ok := inner.(*model.Cast); ok {
			if c.Width >= x.Width {
				return o.foldExpr(&model.Cast{Width: x.Width, X: c.X})
			}
		}
		return &model.Cast{Width: x.Width, X: inner}
	case *model.Cond:
		c := o.foldExpr(x.C)
		t := o.foldExpr(x.T)
		f := o.foldExpr(x.F)
		if cc, ok := c.(*model.Const); ok {
			if cc.Val != 0 {
				return t
			}
			return f
		}
		return &model.Cond{C: c, T: t, F: f}
	case *model.Bin:
		a := o.foldExpr(x.X)
		b := o.foldExpr(x.Y)
		ca, aok := a.(*model.Const)
		cb, bok := b.(*model.Const)
		if aok && bok {
			if c, ok := foldBin(x.Op, ca, cb); ok {
				return c
			}
		}
		// Identity simplifications that matter for generated matches.
		if bok {
			switch x.Op {
			case model.OpLAnd:
				if cb.Val != 0 {
					return truthOf(a)
				}
				return boolConst(false)
			case model.OpLOr:
				if cb.Val == 0 {
					return truthOf(a)
				}
				return boolConst(true)
			}
		}
		if aok {
			switch x.Op {
			case model.OpLAnd:
				if ca.Val != 0 {
					return truthOf(b)
				}
				return boolConst(false)
			case model.OpLOr:
				if ca.Val == 0 {
					return truthOf(b)
				}
				return boolConst(true)
			}
		}
		return &model.Bin{Op: x.Op, X: a, Y: b}
	}
	return e
}

// truthOf wraps an expression as a truth value without changing semantics:
// logical operators coerce operands to non-zero tests anyway, so the
// operand itself is returned (the executor applies NonZero).
func truthOf(e model.Expr) model.Expr {
	return &model.Un{Op: model.OpNot, X: &model.Un{Op: model.OpNot, X: e}}
}

func boolConst(v bool) *model.Const {
	if v {
		return &model.Const{Width: 1, Val: 1}
	}
	return &model.Const{Width: 1, Val: 0}
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// foldBin evaluates a binary op over constants using the executor's
// coercion rules (right operand resized to left's width for arithmetic,
// max-widening for comparisons).
func foldBin(op model.Op, a, b *model.Const) (model.Expr, bool) {
	switch op {
	case model.OpLAnd:
		return boolConst(a.Val != 0 && b.Val != 0), true
	case model.OpLOr:
		return boolConst(a.Val != 0 || b.Val != 0), true
	case model.OpEq, model.OpNe, model.OpLt, model.OpLe, model.OpGt, model.OpGe:
		w := a.Width
		if b.Width > w {
			w = b.Width
		}
		av, bv := a.Val&mask(w), b.Val&mask(w)
		switch op {
		case model.OpEq:
			return boolConst(av == bv), true
		case model.OpNe:
			return boolConst(av != bv), true
		case model.OpLt:
			return boolConst(av < bv), true
		case model.OpLe:
			return boolConst(av <= bv), true
		case model.OpGt:
			return boolConst(av > bv), true
		default:
			return boolConst(av >= bv), true
		}
	}
	w := a.Width
	av := a.Val & mask(w)
	bv := b.Val & mask(w)
	var v uint64
	switch op {
	case model.OpAdd:
		v = av + bv
	case model.OpSub:
		v = av - bv
	case model.OpMul:
		v = av * bv
	case model.OpDiv:
		if bv == 0 {
			v = mask(w)
		} else {
			v = av / bv
		}
	case model.OpMod:
		if bv == 0 {
			v = av
		} else {
			v = av % bv
		}
	case model.OpAnd:
		v = av & bv
	case model.OpOr:
		v = av | bv
	case model.OpXor:
		v = av ^ bv
	case model.OpShl:
		if bv >= uint64(w) {
			v = 0
		} else {
			v = av << bv
		}
	case model.OpShr:
		if bv >= uint64(w) {
			v = 0
		} else {
			v = av >> bv
		}
	default:
		return nil, false
	}
	return &model.Const{Width: w, Val: v & mask(w)}, true
}

// rewriteAll applies an expression rewriter to every statement.
func (o *optimizer) rewriteAll(rw func(model.Expr) model.Expr) {
	for _, f := range o.p.Funcs {
		f.Body = rewriteBody(f.Body, rw)
	}
}

func rewriteBody(body []model.Stmt, rw func(model.Expr) model.Expr) []model.Stmt {
	out := make([]model.Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case *model.Assign:
			out = append(out, &model.Assign{LHS: st.LHS, RHS: rw(st.RHS)})
		case *model.If:
			out = append(out, &model.If{
				Cond: rw(st.Cond),
				Then: rewriteBody(st.Then, rw),
				Else: rewriteBody(st.Else, rw),
			})
		case *model.Fork:
			nf := &model.Fork{Selector: st.Selector, Labels: st.Labels}
			for _, b := range st.Branches {
				nf.Branches = append(nf.Branches, rewriteBody(b, rw))
			}
			out = append(out, nf)
		case *model.Assume:
			out = append(out, &model.Assume{Cond: rw(st.Cond)})
		case *model.AssertCheck:
			out = append(out, &model.AssertCheck{ID: st.ID, Cond: rw(st.Cond)})
		default:
			out = append(out, s)
		}
	}
	return out
}

// ------------------------------------------------------------ simplification --

// simplifyAll prunes branches with constant conditions and removes empty
// Ifs and single-branch forks.
func (o *optimizer) simplifyAll() {
	for _, f := range o.p.Funcs {
		f.Body = simplifyBody(f.Body)
	}
}

func simplifyBody(body []model.Stmt) []model.Stmt {
	out := make([]model.Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case *model.If:
			then := simplifyBody(st.Then)
			els := simplifyBody(st.Else)
			if c, ok := st.Cond.(*model.Const); ok {
				if c.Val != 0 {
					out = append(out, then...)
				} else {
					out = append(out, els...)
				}
				continue
			}
			if len(then) == 0 && len(els) == 0 {
				continue
			}
			out = append(out, &model.If{Cond: st.Cond, Then: then, Else: els})
		case *model.Fork:
			branches := make([][]model.Stmt, len(st.Branches))
			for i, b := range st.Branches {
				branches[i] = simplifyBody(b)
			}
			if len(branches) == 1 {
				out = append(out, branches[0]...)
				continue
			}
			out = append(out, &model.Fork{Selector: st.Selector, Labels: st.Labels, Branches: branches})
		case *model.Assume:
			if c, ok := st.Cond.(*model.Const); ok && c.Val != 0 {
				continue // assume(true) is a no-op
			}
			out = append(out, st)
		case *model.AssertCheck:
			if c, ok := st.Cond.(*model.Const); ok && c.Val != 0 {
				continue // provably-true assertion
			}
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out
}

// ---------------------------------------------------------------- dead code --

// deadCode removes assignments (and symbolic makes) whose targets are never
// read by any expression in the program, iterating to a fixpoint.
func (o *optimizer) deadCode() {
	for {
		read := map[string]bool{}
		collect := func(e model.Expr) model.Expr {
			for _, r := range model.Refs(e, nil) {
				read[r] = true
			}
			return e
		}
		for _, f := range o.p.Funcs {
			rewriteBody(f.Body, collect)
		}
		removed := false
		for _, f := range o.p.Funcs {
			f.Body = removeDead(f.Body, read, &removed)
		}
		if !removed {
			return
		}
	}
}

func removeDead(body []model.Stmt, read map[string]bool, removed *bool) []model.Stmt {
	out := make([]model.Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case *model.Assign:
			if !read[st.LHS] && st.LHS != model.ForwardFlag {
				*removed = true
				continue
			}
			out = append(out, st)
		case *model.MakeSymbolic:
			if !read[st.Var] {
				*removed = true
				continue
			}
			out = append(out, st)
		case *model.If:
			out = append(out, &model.If{
				Cond: st.Cond,
				Then: removeDead(st.Then, read, removed),
				Else: removeDead(st.Else, read, removed),
			})
		case *model.Fork:
			nf := &model.Fork{Selector: st.Selector, Labels: st.Labels}
			for _, b := range st.Branches {
				nf.Branches = append(nf.Branches, removeDead(b, read, removed))
			}
			out = append(out, nf)
		default:
			out = append(out, s)
		}
	}
	return out
}

// dropEmptyCalls removes calls to functions whose bodies became empty.
func (o *optimizer) dropEmptyCalls() {
	for pass := 0; pass < 4; pass++ {
		empty := map[string]bool{}
		for name, f := range o.p.Funcs {
			if len(f.Body) == 0 {
				empty[name] = true
			}
		}
		if len(empty) == 0 {
			return
		}
		changed := false
		for _, f := range o.p.Funcs {
			f.Body = dropCalls(f.Body, empty, &changed)
		}
		if !changed {
			return
		}
	}
}

func dropCalls(body []model.Stmt, empty map[string]bool, changed *bool) []model.Stmt {
	out := make([]model.Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case *model.Call:
			if empty[st.Func] {
				*changed = true
				continue
			}
			out = append(out, st)
		case *model.If:
			out = append(out, &model.If{
				Cond: st.Cond,
				Then: dropCalls(st.Then, empty, changed),
				Else: dropCalls(st.Else, empty, changed),
			})
		case *model.Fork:
			nf := &model.Fork{Selector: st.Selector, Labels: st.Labels}
			for _, b := range st.Branches {
				nf.Branches = append(nf.Branches, dropCalls(b, empty, changed))
			}
			out = append(out, nf)
		default:
			out = append(out, s)
		}
	}
	return out
}

// ---------------------------------------------------------- chain compaction --

// chainCompact rewrites a cascade
//
//	if (k == c1) B1 else if (k == c2) B2 ... else D
//
// over the same key expression with pairwise-distinct constants into a Fork
// whose branches carry a single Assume each:
//
//	fork { assume(k==c1); B1 | assume(k==c2); B2 | ... | assume(k!=c1 && ...); D }
//
// The branches are mutually exclusive, so each path carries one equality
// instead of i-1 accumulated disequalities — the same effect the paper
// attributes to -O3 on rule-cascade models (§5.4).
func (o *optimizer) chainCompact() {
	for _, f := range o.p.Funcs {
		f.Body = compactBody(f.Body)
	}
}

func compactBody(body []model.Stmt) []model.Stmt {
	out := make([]model.Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case *model.If:
			if fork, ok := tryCompact(st); ok {
				out = append(out, fork)
				continue
			}
			out = append(out, &model.If{
				Cond: st.Cond,
				Then: compactBody(st.Then),
				Else: compactBody(st.Else),
			})
		case *model.Fork:
			nf := &model.Fork{Selector: st.Selector, Labels: st.Labels}
			for _, b := range st.Branches {
				nf.Branches = append(nf.Branches, compactBody(b))
			}
			out = append(out, nf)
		default:
			out = append(out, s)
		}
	}
	return out
}

// tryCompact recognizes an equality cascade of length ≥ 3 on one key.
func tryCompact(root *model.If) (model.Stmt, bool) {
	var key model.Expr
	var consts []*model.Const
	var bodies [][]model.Stmt
	cur := root
	for {
		bin, ok := cur.Cond.(*model.Bin)
		if !ok || bin.Op != model.OpEq {
			break
		}
		c, ok := bin.Y.(*model.Const)
		if !ok {
			break
		}
		if key == nil {
			key = bin.X
		} else if !sameExpr(key, bin.X) {
			break
		}
		consts = append(consts, c)
		bodies = append(bodies, cur.Then)
		if len(cur.Else) == 1 {
			if next, ok := cur.Else[0].(*model.If); ok {
				cur = next
				continue
			}
		}
		// Chain ends; cur.Else is the default.
		if len(consts) < 3 {
			return nil, false
		}
		seen := map[uint64]bool{}
		for _, c := range consts {
			if seen[c.Val] {
				return nil, false // duplicate constants: order matters
			}
			seen[c.Val] = true
		}
		fork := &model.Fork{Selector: "$match"}
		for i := range consts {
			branch := []model.Stmt{&model.Assume{Cond: &model.Bin{Op: model.OpEq, X: key, Y: consts[i]}}}
			branch = append(branch, compactBody(bodies[i])...)
			fork.Labels = append(fork.Labels, fmt.Sprintf("=0x%x", consts[i].Val))
			fork.Branches = append(fork.Branches, branch)
		}
		var def []model.Stmt
		for _, c := range consts {
			def = append(def, &model.Assume{Cond: &model.Bin{Op: model.OpNe, X: key, Y: c}})
		}
		def = append(def, compactBody(cur.Else)...)
		fork.Labels = append(fork.Labels, "default")
		fork.Branches = append(fork.Branches, def)
		return fork, true
	}
	return nil, false
}

// sameExpr reports structural equality of two IR expressions.
func sameExpr(a, b model.Expr) bool {
	switch x := a.(type) {
	case *model.Const:
		y, ok := b.(*model.Const)
		return ok && x.Width == y.Width && x.Val == y.Val
	case *model.Ref:
		y, ok := b.(*model.Ref)
		return ok && x.Name == y.Name
	case *model.Un:
		y, ok := b.(*model.Un)
		return ok && x.Op == y.Op && sameExpr(x.X, y.X)
	case *model.Cast:
		y, ok := b.(*model.Cast)
		return ok && x.Width == y.Width && sameExpr(x.X, y.X)
	case *model.Bin:
		y, ok := b.(*model.Bin)
		return ok && x.Op == y.Op && sameExpr(x.X, y.X) && sameExpr(x.Y, y.Y)
	case *model.Cond:
		y, ok := b.(*model.Cond)
		return ok && sameExpr(x.C, y.C) && sameExpr(x.T, y.T) && sameExpr(x.F, y.F)
	}
	return false
}
