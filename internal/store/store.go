// Package store is the crash-safe durability layer of the verification
// service: an append-only, checksummed write-ahead log of job lifecycle
// records with periodic snapshot compaction. p4served logs every job
// transition (submitted → running → done/failed/cancelled, with the
// finished report bytes) through it; after a crash, Open replays the
// longest valid log prefix and the service resubmits whatever was still
// in flight.
//
// Durability model:
//
//   - Every record is framed as length + CRC32 + JSON payload and
//     appended to dir/wal.log. Appends are group-committed: an
//     asynchronous writer batches concurrently queued records into one
//     write + one fsync, and Put returns only after its record is
//     durable (or the write failed).
//   - Recovery tolerates torn writes: replay stops at the first record
//     that is short, overlong or fails its checksum, and the log is
//     truncated back to the last valid record. A crash mid-append loses
//     at most the unacknowledged suffix — never acknowledged records,
//     never the whole log.
//   - Every SnapshotEvery appended records the state is compacted: the
//     full job table is written to dir/snapshot (same frame format,
//     atomic rename) and the WAL restarts empty. A corrupt snapshot is
//     quarantined aside and recovery proceeds from the WAL alone.
//   - Finished jobs are retained up to a TTL (and an optional count
//     bound); retention is enforced at compaction and at open.
//   - A failed write or fsync flips the store into degraded mode:
//     appends stop (the WAL tail may be torn), reads keep working, and
//     the service keeps serving from memory. Degraded is surfaced in
//     Stats so operators see durability loss instead of silent lying.
//
// The payloads are opaque to this package beyond the Job envelope —
// internal/service stores its wire-format JobRequest and report bytes in
// them — so the store has no dependency on the service types.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p4assert/internal/failpoint"
)

// Lifecycle states mirrored from the service (kept as plain strings so
// the store does not import it).
const (
	StatePending   = "pending"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// TerminalState reports whether a state string is final.
func TerminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Errors.
var (
	// ErrDegraded rejects appends after a write/fsync failure: the WAL
	// tail is suspect and appending past it would fake durability.
	ErrDegraded = errors.New("store: degraded (previous write failed); appends disabled")
	errClosed   = errors.New("store: closed")
)

// Job is one job's durable record. Every Put logs the full record (not a
// delta), so replay is insensitive to write interleaving: the highest
// Rev wins.
type Job struct {
	ID string `json:"id"`
	// Seq is the service's submission sequence number; Open's MaxSeq
	// restores the ID counter across restarts.
	Seq int64 `json:"seq"`
	// Rev orders this job's own transitions (submit=1, running=2, ...).
	// Apply keeps the highest seen, so concurrent Put goroutines cannot
	// resurrect an earlier state on replay.
	Rev int64 `json:"rev"`
	// Request is the service's wire-format JobRequest, opaque here. It is
	// what recovery needs to resubmit an interrupted job.
	Request json.RawMessage `json:"request,omitempty"`
	// Priority is the admission class ("interactive" or "bulk").
	Priority string `json:"priority,omitempty"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Verdict  string `json:"verdict,omitempty"`
	// Violations counts violated assertions (divergences for diff jobs).
	Violations int       `json:"violations,omitempty"`
	CacheHit   bool      `json:"cache_hit,omitempty"`
	Technique  string    `json:"technique,omitempty"`
	EnqueuedAt time.Time `json:"enqueued_at"`
	StartedAt  time.Time `json:"started_at,omitempty"`
	FinishedAt time.Time `json:"finished_at,omitempty"`
	// Report is the serialized report of a done job, byte-preserved
	// across restarts.
	Report []byte `json:"report,omitempty"`
}

// clone returns a deep-enough copy (the byte slices are never mutated
// after Put, so sharing them is safe).
func (j *Job) clone() *Job {
	c := *j
	return &c
}

// record is one WAL entry.
type record struct {
	// Op is "put" (full job record), "drop" (retention removal) or
	// "events" (a batch of progress events journaled for ID).
	Op  string `json:"op"`
	Job *Job   `json:"job,omitempty"`
	ID  string `json:"id,omitempty"`
	// Events carries op "events" payloads: opaque JSON envelopes from the
	// service's live feed (telemetry.Event on the wire), appended in feed
	// order so a reconnecting client can replay a job's history after a
	// daemon restart.
	Events []json.RawMessage `json:"events,omitempty"`
}

// snapshotState is the compacted form of the whole store.
type snapshotState struct {
	Jobs   []*Job                       `json:"jobs"`
	Events map[string][]json.RawMessage `json:"events,omitempty"`
}

// Options configures a Store.
type Options struct {
	// SnapshotEvery compacts after this many WAL records (0 = 4096;
	// negative disables automatic compaction).
	SnapshotEvery int
	// Retain drops finished jobs whose FinishedAt is older than this at
	// compaction/open time (0 = keep forever).
	Retain time.Duration
	// MaxFinished bounds retained finished jobs, oldest dropped first
	// (0 = unbounded).
	MaxFinished int
	// MaxEventsPerJob bounds the journaled progress events retained per
	// job, oldest dropped first (0 = DefaultMaxEventsPerJob; negative
	// disables journaling entirely: AppendEvents becomes a no-op).
	MaxEventsPerJob int
	// NoSync skips fsync (tests that measure logic, not durability).
	NoSync bool
}

// DefaultSnapshotEvery is the automatic compaction threshold.
const DefaultSnapshotEvery = 4096

// DefaultMaxEventsPerJob is the per-job event journal bound.
const DefaultMaxEventsPerJob = 16384

// Stats counts store activity since Open.
type Stats struct {
	// Jobs is the live record count; Finished of those are terminal.
	Jobs     int `json:"jobs"`
	Finished int `json:"finished"`
	// Appends counts durable WAL records; Drops of those were retention
	// removals.
	Appends int64 `json:"appends"`
	Drops   int64 `json:"drops"`
	// Snapshots counts compactions; WALRecords is the record count since
	// the last one.
	Snapshots  int64 `json:"snapshots"`
	WALRecords int64 `json:"wal_records"`
	// RecoveredRecords/TruncatedBytes describe the last Open: how many
	// records replayed and how many torn/corrupt tail bytes were cut.
	RecoveredRecords int64 `json:"recovered_records"`
	TruncatedBytes   int64 `json:"truncated_bytes"`
	// SnapshotQuarantined marks an unreadable snapshot set aside at Open.
	SnapshotQuarantined bool `json:"snapshot_quarantined,omitempty"`
	// Expired counts finished jobs dropped by TTL/bound retention.
	Expired int64 `json:"expired"`
	// Events is the number of progress events currently journaled across
	// all jobs; EventAppends counts event batches made durable.
	Events       int   `json:"events"`
	EventAppends int64 `json:"event_appends"`
	// Degraded reports that a write failed and appends are disabled.
	Degraded bool `json:"degraded"`
}

// Store is a WAL-backed job/report store. Safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	jobs      map[string]*Job
	events    map[string][]json.RawMessage
	walCount  int64 // records in the current WAL generation
	stats     Stats
	closed    bool
	compactMu sync.Mutex // serializes Compact callers

	degraded atomic.Bool
	w        *walWriter
	closeOne sync.Once
}

func (s *Store) walPath() string      { return filepath.Join(s.dir, "wal.log") }
func (s *Store) snapPath() string     { return filepath.Join(s.dir, "snapshot") }
func (s *Store) snapTmpPath() string  { return filepath.Join(s.dir, "snapshot.tmp") }
func (s *Store) snapQuarPath() string { return filepath.Join(s.dir, "snapshot.corrupt") }

// Open loads (or creates) the store in dir: snapshot first, then the
// WAL's longest valid prefix, truncating any torn tail.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if opts.MaxEventsPerJob == 0 {
		opts.MaxEventsPerJob = DefaultMaxEventsPerJob
	}
	s := &Store{dir: dir, opts: opts, jobs: map[string]*Job{}, events: map[string][]json.RawMessage{}}

	// Snapshot: atomic-renamed and CRC-framed, so it is either a whole
	// valid state or quarantined — never half-applied.
	if data, err := os.ReadFile(s.snapPath()); err == nil {
		if err := s.loadSnapshot(data); err != nil {
			os.Remove(s.snapQuarPath())
			os.Rename(s.snapPath(), s.snapQuarPath())
			s.stats.SnapshotQuarantined = true
			s.jobs = map[string]*Job{}
			s.events = map[string][]json.RawMessage{}
		}
	}

	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	records, validEnd, err := scanWAL(f, func(payload []byte) {
		var rec record
		if json.Unmarshal(payload, &rec) != nil {
			return // CRC-valid but unparseable: skip, keep replaying
		}
		s.apply(&rec)
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: wal replay: %w", err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if validEnd < size {
		// Torn or corrupt tail: cut back to the last valid record so
		// future appends start from a clean frame boundary.
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn tail: %w", err)
		}
		s.stats.TruncatedBytes = size - validEnd
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.stats.RecoveredRecords = int64(records)
	s.walCount = int64(records)

	s.expireLocked(time.Now())
	s.w = newWALWriter(f, opts.NoSync)
	return s, nil
}

// loadSnapshot parses a framed snapshot file into the job table.
func (s *Store) loadSnapshot(data []byte) error {
	payload, err := readFrameBytes(data)
	if err != nil {
		return err
	}
	var snap snapshotState
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("%w: %v", errCorrupt, err)
	}
	for _, j := range snap.Jobs {
		s.jobs[j.ID] = j
	}
	for id, evs := range snap.Events {
		s.events[id] = evs
	}
	return nil
}

// readFrameBytes validates a single frame held fully in memory.
func readFrameBytes(data []byte) ([]byte, error) {
	return readFrame(bytes.NewReader(data))
}

// apply merges one record into the in-memory table (Rev-ordered).
func (s *Store) apply(rec *record) {
	switch rec.Op {
	case "put":
		if rec.Job == nil || rec.Job.ID == "" {
			return
		}
		if cur, ok := s.jobs[rec.Job.ID]; ok && cur.Rev > rec.Job.Rev {
			return
		}
		s.jobs[rec.Job.ID] = rec.Job
	case "drop":
		delete(s.jobs, rec.ID)
		delete(s.events, rec.ID)
	case "events":
		if rec.ID == "" || len(rec.Events) == 0 {
			return
		}
		evs := append(s.events[rec.ID], rec.Events...)
		if max := s.opts.MaxEventsPerJob; max > 0 && len(evs) > max {
			evs = append([]json.RawMessage(nil), evs[len(evs)-max:]...)
		}
		s.events[rec.ID] = evs
	}
}

// Put makes a job record durable and applies it. It blocks until the
// record is fsynced (group-committed with concurrent Puts) and returns
// ErrDegraded without writing once a previous write has failed.
func (s *Store) Put(j *Job) error {
	return s.append(&record{Op: "put", Job: j.clone()})
}

// Drop durably removes a job record (retention) and its event journal.
func (s *Store) Drop(id string) error {
	return s.append(&record{Op: "drop", ID: id})
}

// AppendEvents journals a batch of progress events for a job, preserving
// feed order. The payloads are opaque envelopes (the service journals
// telemetry.Event JSON); per-job retention keeps the newest
// MaxEventsPerJob. A negative MaxEventsPerJob disables journaling.
func (s *Store) AppendEvents(id string, events []json.RawMessage) error {
	if len(events) == 0 || s.opts.MaxEventsPerJob < 0 {
		return nil
	}
	if err := s.append(&record{Op: "events", ID: id, Events: events}); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.EventAppends++
	s.mu.Unlock()
	return nil
}

// Events returns the journaled progress events for a job in feed order
// (nil if none).
func (s *Store) Events(id string) []json.RawMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := s.events[id]
	if len(evs) == 0 {
		return nil
	}
	return append([]json.RawMessage(nil), evs...)
}

func (s *Store) append(rec *record) error {
	if s.degraded.Load() {
		return ErrDegraded
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	s.apply(rec)
	s.mu.Unlock()

	if err := s.w.submit(&walReq{payload: payload}); err != nil {
		if err != errClosed {
			s.degraded.Store(true)
		}
		return err
	}

	s.mu.Lock()
	s.stats.Appends++
	if rec.Op == "drop" {
		s.stats.Drops++
	}
	s.walCount++
	needCompact := s.opts.SnapshotEvery > 0 && s.walCount >= int64(s.opts.SnapshotEvery)
	s.mu.Unlock()

	if needCompact {
		// Best-effort: a failed compaction leaves the (valid, longer) WAL
		// in place; it is retried at the next threshold crossing.
		s.Compact()
	}
	return nil
}

// Compact writes the full state as a fresh snapshot (atomic rename),
// truncates the WAL, and enforces retention. Concurrent appends queue
// behind the rotation; concurrent Compacts coalesce.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if s.degraded.Load() {
		return ErrDegraded
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	s.expireLocked(time.Now())
	snap := snapshotState{Jobs: make([]*Job, 0, len(s.jobs))}
	for _, j := range s.jobs {
		snap.Jobs = append(snap.Jobs, j)
	}
	sort.Slice(snap.Jobs, func(i, k int) bool { return snap.Jobs[i].Seq < snap.Jobs[k].Seq })
	// Event journals ride along only for jobs that still exist; orphaned
	// journals (a drop raced an in-flight AppendEvents) are pruned here.
	for id := range s.events {
		if _, ok := s.jobs[id]; !ok {
			delete(s.events, id)
			continue
		}
		if snap.Events == nil {
			snap.Events = map[string][]json.RawMessage{}
		}
		snap.Events[id] = s.events[id]
	}
	s.mu.Unlock()

	payload, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	frame := encodeFrame(payload)

	// The rotation runs on the writer goroutine, strictly after every
	// append enqueued before it: those records are all reflected in the
	// snapshot (apply happens before enqueue under s.mu), so dropping
	// the old WAL loses nothing.
	err = s.w.submit(&walReq{rotate: func(f *os.File) (*os.File, error) {
		if a := failpoint.Hit(FailpointSnapshot); a != nil && a.Kind == "error" {
			return nil, a.Err
		}
		if err := os.WriteFile(s.snapTmpPath(), frame, 0o644); err != nil {
			return nil, fmt.Errorf("store: snapshot: %w", err)
		}
		if !s.opts.NoSync {
			if sf, err := os.Open(s.snapTmpPath()); err == nil {
				sf.Sync()
				sf.Close()
			}
		}
		if err := os.Rename(s.snapTmpPath(), s.snapPath()); err != nil {
			return nil, fmt.Errorf("store: snapshot: %w", err)
		}
		if err := f.Truncate(0); err != nil {
			return nil, fmt.Errorf("store: wal reset: %w", err)
		}
		if _, err := f.Seek(0, 0); err != nil {
			return nil, fmt.Errorf("store: wal reset: %w", err)
		}
		return nil, nil
	}})
	if err != nil {
		return err
	}

	s.mu.Lock()
	s.walCount = 0
	s.stats.Snapshots++
	s.mu.Unlock()
	return nil
}

// expireLocked enforces TTL and count retention on finished jobs.
// Callers hold s.mu.
func (s *Store) expireLocked(now time.Time) {
	var finished []*Job
	for _, j := range s.jobs {
		if TerminalState(j.State) {
			finished = append(finished, j)
		}
	}
	drop := func(j *Job) {
		delete(s.jobs, j.ID)
		delete(s.events, j.ID)
		s.stats.Expired++
	}
	if s.opts.Retain > 0 {
		cutoff := now.Add(-s.opts.Retain)
		kept := finished[:0]
		for _, j := range finished {
			if !j.FinishedAt.IsZero() && j.FinishedAt.Before(cutoff) {
				drop(j)
			} else {
				kept = append(kept, j)
			}
		}
		finished = kept
	}
	if s.opts.MaxFinished > 0 && len(finished) > s.opts.MaxFinished {
		sort.Slice(finished, func(i, k int) bool { return finished[i].Seq < finished[k].Seq })
		for _, j := range finished[:len(finished)-s.opts.MaxFinished] {
			drop(j)
		}
	}
}

// Jobs snapshots every live record, sorted by submission sequence.
func (s *Store) Jobs() []*Job {
	s.mu.Lock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.clone())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	return out
}

// Get returns one record, or nil.
func (s *Store) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j.clone()
	}
	return nil
}

// MaxSeq returns the highest submission sequence seen, for restoring the
// service's ID counter after a restart.
func (s *Store) MaxSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max int64
	for _, j := range s.jobs {
		if j.Seq > max {
			max = j.Seq
		}
	}
	return max
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Jobs = len(s.jobs)
	for _, j := range s.jobs {
		if TerminalState(j.State) {
			st.Finished++
		}
	}
	st.WALRecords = s.walCount
	st.Degraded = s.degraded.Load()
	for _, evs := range s.events {
		st.Events += len(evs)
	}
	return st
}

// Degraded reports whether a write failure has disabled appends.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// Close stops the writer after draining queued appends. Further Puts
// fail. Close never compacts — the WAL alone is a complete record.
func (s *Store) Close() error {
	s.closeOne.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.w.close()
	})
	return nil
}
