package store

// The write-ahead log: length+CRC framed JSON records, an asynchronous
// writer goroutine that group-commits (one fsync covers every record
// queued behind it), and a torn-write-tolerant scanner that recovers the
// longest valid prefix.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"p4assert/internal/failpoint"
)

// Failpoint sites threaded through the WAL hot path (see
// internal/failpoint for the spec grammar).
const (
	// FailpointWrite injects write faults: "error" fails the write
	// outright; "short" writes only a prefix of the frame, leaving a torn
	// record on disk (what a crash mid-write leaves behind).
	FailpointWrite = "store/wal/write"
	// FailpointFsync injects an fsync error after a batch is written.
	FailpointFsync = "store/wal/fsync"
	// FailpointRecord ("corrupt") flips a byte of the framed payload
	// before it reaches the disk, simulating media corruption that the
	// CRC must catch on replay.
	FailpointRecord = "store/wal/record"
	// FailpointSnapshot injects an error into snapshot compaction.
	FailpointSnapshot = "store/snapshot/write"
)

// frameHeaderLen is the per-record framing overhead: a 4-byte
// little-endian payload length followed by a 4-byte CRC32 (IEEE) of the
// payload.
const frameHeaderLen = 8

// maxRecordLen rejects absurd lengths during recovery: a header whose
// length field exceeds it is treated as corruption, not as a 4 GiB
// allocation. Reports are capped far below this by the service API.
const maxRecordLen = 64 << 20

// errCorrupt marks a frame that failed validation during a scan.
var errCorrupt = errors.New("store: corrupt record")

// encodeFrame renders one record: length, CRC32(payload), payload.
func encodeFrame(payload []byte) []byte {
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)
	return frame
}

// readFrame reads one record from r. io.EOF means a clean end;
// errCorrupt (possibly wrapped) means the bytes at the cursor are not a
// valid record — a torn tail or flipped bits.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		// A partial header is a torn write, not an I/O failure.
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: torn header", errCorrupt)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxRecordLen {
		return nil, fmt.Errorf("%w: implausible length %d", errCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: torn payload", errCorrupt)
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	return payload, nil
}

// scanWAL replays every valid record from f, calling apply for each. It
// returns the number of records applied and the byte offset of the first
// invalid record (== file size when the log is fully valid). A non-nil
// error is a real I/O failure, not corruption.
func scanWAL(f *os.File, apply func(payload []byte)) (records int, validEnd int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	r := &countingReader{r: f}
	for {
		payload, err := readFrame(r)
		if err == io.EOF {
			return records, validEnd, nil
		}
		if errors.Is(err, errCorrupt) {
			return records, validEnd, nil
		}
		if err != nil {
			return records, validEnd, err
		}
		apply(payload)
		records++
		validEnd = r.n
	}
}

// countingReader tracks how many bytes have been consumed, so the
// scanner knows where the last valid record ended.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// walReq is one unit of work for the writer goroutine: either payloads
// to append (group-committed) or a rotate closure executed serially with
// respect to every append queued before it.
type walReq struct {
	payload []byte
	rotate  func(f *os.File) (*os.File, error)
	done    chan error
}

// walWriter owns the WAL file handle. All writes and rotations funnel
// through its goroutine, which batches queued appends into a single
// write+fsync group commit.
type walWriter struct {
	ch     chan *walReq
	closed chan struct{}
	noSync bool
}

// maxBatch bounds how many queued appends share one fsync.
const maxBatch = 128

func newWALWriter(f *os.File, noSync bool) *walWriter {
	w := &walWriter{
		ch:     make(chan *walReq, 256),
		closed: make(chan struct{}),
		noSync: noSync,
	}
	go w.loop(f)
	return w
}

// submit enqueues a request and waits for its durability (or failure).
func (w *walWriter) submit(r *walReq) error {
	r.done = make(chan error, 1)
	select {
	case w.ch <- r:
	case <-w.closed:
		return errClosed
	}
	select {
	case err := <-r.done:
		return err
	case <-w.closed:
		// The loop acks every request before exiting; a closed signal
		// with no ack means the request raced the close.
		select {
		case err := <-r.done:
			return err
		default:
			return errClosed
		}
	}
}

// close stops the writer after draining queued work.
func (w *walWriter) close() {
	select {
	case <-w.closed:
		return
	default:
	}
	done := make(chan error, 1)
	w.ch <- &walReq{rotate: func(f *os.File) (*os.File, error) { return nil, errClosed }, done: done}
	<-done
}

// loop is the writer goroutine: batch appends, one fsync per batch, ack
// every waiter. A rotate request forms a batch boundary so the WAL file
// swap is ordered against every append around it.
func (w *walWriter) loop(f *os.File) {
	defer close(w.closed)
	for first := range w.ch {
		batch := []*walReq{}
		var rotate *walReq
		if first.rotate != nil {
			rotate = first
		} else {
			batch = append(batch, first)
		drain:
			for len(batch) < maxBatch && rotate == nil {
				select {
				case r := <-w.ch:
					if r.rotate != nil {
						rotate = r
					} else {
						batch = append(batch, r)
					}
				default:
					break drain
				}
			}
		}
		if len(batch) > 0 {
			err := w.writeBatch(f, batch)
			for _, r := range batch {
				r.done <- err
			}
		}
		if rotate != nil {
			nf, err := rotate.rotate(f)
			if err == errClosed {
				// Shutdown sentinel: sync what we have and stop.
				if !w.noSync {
					f.Sync()
				}
				f.Close()
				rotate.done <- nil
				return
			}
			if err == nil && nf != nil {
				f.Close()
				f = nf
			}
			rotate.done <- err
		}
	}
}

// writeBatch appends every payload as a frame, then makes the batch
// durable with one fsync. The failpoint sites model the crash anatomy:
// a short write leaves a torn record, a corrupt record flips bits past
// the CRC, a failed fsync leaves durability unknown.
func (w *walWriter) writeBatch(f *os.File, batch []*walReq) error {
	for _, r := range batch {
		frame := encodeFrame(r.payload)
		if a := failpoint.Hit(FailpointRecord); a != nil && a.Kind == "corrupt" && len(r.payload) > 0 {
			frame[frameHeaderLen+len(r.payload)/2] ^= 0x40
		}
		if a := failpoint.Hit(FailpointWrite); a != nil {
			switch a.Kind {
			case "error":
				return a.Err
			case "short":
				n := a.N
				if n <= 0 || n >= int64(len(frame)) {
					n = int64(len(frame)) / 2
				}
				f.Write(frame[:n])
				return a.Err
			}
		}
		if _, err := f.Write(frame); err != nil {
			return fmt.Errorf("store: wal write: %w", err)
		}
	}
	if w.noSync {
		return nil
	}
	if a := failpoint.Hit(FailpointFsync); a != nil && a.Kind == "error" {
		return a.Err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	return nil
}
