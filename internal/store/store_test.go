package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"p4assert/internal/failpoint"
)

func job(id string, seq, rev int64, state string) *Job {
	j := &Job{ID: id, Seq: seq, Rev: rev, State: state, EnqueuedAt: time.Unix(1000+seq, 0).UTC()}
	if TerminalState(state) {
		j.FinishedAt = time.Unix(2000+seq, 0).UTC()
		if state == StateDone {
			j.Report = []byte(fmt.Sprintf(`{"verdict":"ok","job":%q}`, id))
		}
	}
	return j
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// TestRoundTrip: records written before Close are all there after reopen,
// including report bytes, byte for byte.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true})
	for i := int64(1); i <= 5; i++ {
		if err := s.Put(job(fmt.Sprintf("j%d", i), i, 1, StatePending)); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(job(fmt.Sprintf("j%d", i), i, 3, StateDone)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drop("j3"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{NoSync: true})
	defer s2.Close()
	jobs := s2.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("recovered %d jobs, want 4", len(jobs))
	}
	for _, j := range jobs {
		if j.State != StateDone || j.Rev != 3 {
			t.Fatalf("job %s recovered as %s rev %d", j.ID, j.State, j.Rev)
		}
		want := fmt.Sprintf(`{"verdict":"ok","job":%q}`, j.ID)
		if string(j.Report) != want {
			t.Fatalf("job %s report = %q, want %q", j.ID, j.Report, want)
		}
	}
	if got := s2.MaxSeq(); got != 5 {
		t.Fatalf("MaxSeq = %d, want 5", got)
	}
	if st := s2.Stats(); st.RecoveredRecords != 11 || st.TruncatedBytes != 0 {
		t.Fatalf("stats after clean reopen: %+v", st)
	}
}

// TestRevOrdering: an older rev appended after a newer one (out-of-order
// interleaving of concurrent Put goroutines) must not win on replay.
func TestRevOrdering(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true})
	if err := s.Put(job("j1", 1, 3, StateDone)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(job("j1", 1, 2, StateRunning)); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("j1"); got.State != StateDone {
		t.Fatalf("live state = %s, want done", got.State)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{NoSync: true})
	defer s2.Close()
	if got := s2.Get("j1"); got == nil || got.State != StateDone || got.Rev != 3 {
		t.Fatalf("replayed state = %+v, want done rev 3", got)
	}
}

// TestTornTailTruncated: bytes of a partial record at the WAL tail (a
// crash mid-append) are cut on open and every prior record survives.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []struct {
		name string
		keep int // bytes of the final frame to keep
	}{
		{"header-only", 5},
		{"partial-payload", frameHeaderLen + 10},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{NoSync: true})
			for i := int64(1); i <= 3; i++ {
				if err := s.Put(job(fmt.Sprintf("j%d", i), i, 1, StateDone)); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()

			// Manually append a torn frame.
			payload, _ := json.Marshal(&record{Op: "put", Job: job("torn", 9, 1, StateDone)})
			frame := encodeFrame(payload)
			walPath := filepath.Join(dir, "wal.log")
			f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(frame[:cut.keep]); err != nil {
				t.Fatal(err)
			}
			f.Close()
			before, _ := os.Stat(walPath)

			s2 := mustOpen(t, dir, Options{NoSync: true})
			defer s2.Close()
			if got := len(s2.Jobs()); got != 3 {
				t.Fatalf("recovered %d jobs, want 3", got)
			}
			if s2.Get("torn") != nil {
				t.Fatal("torn record resurrected")
			}
			st := s2.Stats()
			if st.TruncatedBytes != int64(cut.keep) {
				t.Fatalf("TruncatedBytes = %d, want %d", st.TruncatedBytes, cut.keep)
			}
			after, _ := os.Stat(walPath)
			if after.Size() != before.Size()-int64(cut.keep) {
				t.Fatalf("wal size %d, want %d", after.Size(), before.Size()-int64(cut.keep))
			}

			// The truncated log must accept appends again.
			if err := s2.Put(job("j4", 4, 1, StateDone)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBitFlipStopsReplay: a flipped byte mid-log fails the CRC; replay
// keeps the prefix and truncates the rest (even valid records after the
// flip — order must not be reinvented around a hole).
func TestBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true})
	var offsets []int64
	for i := int64(1); i <= 5; i++ {
		if err := s.Put(job(fmt.Sprintf("j%d", i), i, 1, StateDone)); err != nil {
			t.Fatal(err)
		}
		fi, _ := os.Stat(filepath.Join(dir, "wal.log"))
		offsets = append(offsets, fi.Size())
	}
	s.Close()

	// Flip a payload byte inside record 3.
	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[1]+frameHeaderLen+4] ^= 0x01
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{NoSync: true})
	defer s2.Close()
	if got := len(s2.Jobs()); got != 2 {
		t.Fatalf("recovered %d jobs, want 2 (prefix before the flip)", got)
	}
	st := s2.Stats()
	if st.RecoveredRecords != 2 || st.TruncatedBytes != offsets[4]-offsets[1] {
		t.Fatalf("stats = %+v, want 2 records, %d truncated bytes", st, offsets[4]-offsets[1])
	}
}

// TestFailpointMatrix drives the injected fault kinds through Put and
// checks both the degraded-mode contract and what a reopen recovers.
func TestFailpointMatrix(t *testing.T) {
	cases := []struct {
		name string
		site string
		spec string
		// wantRecovered is how many of the 5 records survive reopen: the 2
		// acked before arming always do; the faulted record may or may not
		// have reached the disk intact.
		minRecovered, maxRecovered int
	}{
		{"short-write", FailpointWrite, "times(1):short", 2, 2},
		{"write-error", FailpointWrite, "times(1):error", 2, 2},
		{"fsync-error", FailpointFsync, "times(1):error", 2, 3},
		// A corrupt record is written and fsynced "successfully" — the
		// fault surfaces only at replay, where the CRC cuts it.
		{"corrupt-record", FailpointRecord, "times(1):corrupt", 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer failpoint.Reset()
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{NoSync: tc.site == FailpointRecord})
			for i := int64(1); i <= 2; i++ {
				if err := s.Put(job(fmt.Sprintf("ok%d", i), i, 1, StateDone)); err != nil {
					t.Fatal(err)
				}
			}
			if err := failpoint.Arm(tc.site, tc.spec); err != nil {
				t.Fatal(err)
			}
			err := s.Put(job("faulted", 3, 1, StateDone))
			failpoint.Reset()

			if tc.name == "corrupt-record" {
				// Silent corruption: the write "succeeds".
				if err != nil {
					t.Fatalf("corrupt write errored: %v", err)
				}
				if s.Degraded() {
					t.Fatal("silent corruption must not degrade the live store")
				}
			} else {
				if err == nil {
					t.Fatal("faulted Put succeeded")
				}
				if !s.Degraded() {
					t.Fatal("store not degraded after write failure")
				}
				// Degraded: further appends refuse rather than append past a
				// possibly-torn tail.
				if err := s.Put(job("after", 4, 1, StateDone)); err != ErrDegraded {
					t.Fatalf("append while degraded = %v, want ErrDegraded", err)
				}
				if err := s.Compact(); err != ErrDegraded {
					t.Fatalf("compact while degraded = %v, want ErrDegraded", err)
				}
				// Reads still work.
				if s.Get("ok1") == nil {
					t.Fatal("read failed while degraded")
				}
			}
			s.Close()

			s2 := mustOpen(t, dir, Options{NoSync: true})
			defer s2.Close()
			got := len(s2.Jobs())
			if got < tc.minRecovered || got > tc.maxRecovered {
				t.Fatalf("recovered %d records, want %d..%d", got, tc.minRecovered, tc.maxRecovered)
			}
			if s2.Get("ok1") == nil || s2.Get("ok2") == nil {
				t.Fatal("acknowledged records lost")
			}
			// Whatever happened, the reopened store accepts appends.
			if err := s2.Put(job("fresh", 9, 1, StateDone)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSnapshotCompaction: compaction moves state into the snapshot,
// empties the WAL, and a reopen sees everything.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true, SnapshotEvery: -1})
	for i := int64(1); i <= 10; i++ {
		if err := s.Put(job(fmt.Sprintf("j%d", i), i, 1, StateDone)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("wal after compact: size=%v err=%v, want empty", fi.Size(), err)
	}
	if st := s.Stats(); st.Snapshots != 1 || st.WALRecords != 0 {
		t.Fatalf("stats after compact: %+v", st)
	}
	// Appends after compaction land in the fresh WAL.
	if err := s.Put(job("j11", 11, 1, StateDone)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{NoSync: true})
	defer s2.Close()
	if got := len(s2.Jobs()); got != 11 {
		t.Fatalf("recovered %d jobs, want 11", got)
	}
}

// TestAutoCompaction: crossing SnapshotEvery compacts without an explicit
// call.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true, SnapshotEvery: 5})
	defer s.Close()
	for i := int64(1); i <= 12; i++ {
		if err := s.Put(job(fmt.Sprintf("j%d", i), i, 1, StateDone)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Snapshots < 2 {
		t.Fatalf("Snapshots = %d, want >= 2 after 12 appends at SnapshotEvery=5", st.Snapshots)
	}
}

// TestCorruptSnapshotQuarantined: an unreadable snapshot is set aside,
// not fatal, and the WAL still replays.
func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true, SnapshotEvery: -1})
	for i := int64(1); i <= 3; i++ {
		if err := s.Put(job(fmt.Sprintf("j%d", i), i, 1, StateDone)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(job("j4", 4, 1, StateDone)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Smash the snapshot.
	snapPath := filepath.Join(dir, "snapshot")
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{NoSync: true})
	defer s2.Close()
	st := s2.Stats()
	if !st.SnapshotQuarantined {
		t.Fatal("corrupt snapshot not flagged")
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.corrupt")); err != nil {
		t.Fatal("corrupt snapshot not set aside:", err)
	}
	// Only the post-compaction WAL record survives (snapshot contents are
	// gone — quarantine trades them for availability).
	if got := len(s2.Jobs()); got != 1 || s2.Get("j4") == nil {
		t.Fatalf("recovered %d jobs (j4=%v), want just j4", got, s2.Get("j4"))
	}
}

// TestRetention: TTL and count bounds drop finished jobs; pending ones
// are never retention targets.
func TestRetention(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true, Retain: time.Hour, MaxFinished: 3, SnapshotEvery: -1})
	now := time.Now()
	for i := int64(1); i <= 6; i++ {
		j := job(fmt.Sprintf("old%d", i), i, 1, StateDone)
		j.FinishedAt = now.Add(-2 * time.Hour)
		if err := s.Put(j); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(7); i <= 12; i++ {
		j := job(fmt.Sprintf("new%d", i), i, 1, StateDone)
		j.FinishedAt = now
		if err := s.Put(j); err != nil {
			t.Fatal(err)
		}
	}
	pend := job("pending-old", 13, 1, StatePending)
	pend.EnqueuedAt = now.Add(-48 * time.Hour)
	if err := s.Put(pend); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	jobs := s.Jobs()
	var finished, pending int
	for _, j := range jobs {
		if TerminalState(j.State) {
			finished++
			if strings.HasPrefix(j.ID, "old") {
				t.Fatalf("TTL-expired job %s retained", j.ID)
			}
		} else {
			pending++
		}
	}
	if finished != 3 {
		t.Fatalf("retained %d finished jobs, want 3 (MaxFinished)", finished)
	}
	if pending != 1 {
		t.Fatal("pending job was retention-dropped")
	}
	if st := s.Stats(); st.Expired != 9 {
		t.Fatalf("Expired = %d, want 9", st.Expired)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{NoSync: true})
	defer s2.Close()
	if got := len(s2.Jobs()); got != 4 {
		t.Fatalf("recovered %d jobs, want 4", got)
	}
}

// TestConcurrentPuts: many goroutines appending at once (group-commit
// path) all land, and reopen agrees.
func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true})
	const n = 200
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put(job(fmt.Sprintf("j%d", i), int64(i+1), 1, StateDone))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{NoSync: true})
	defer s2.Close()
	if got := len(s2.Jobs()); got != n {
		t.Fatalf("recovered %d jobs, want %d", got, n)
	}
}

// TestClosedStore: appends after Close fail cleanly.
func TestClosedStore(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{NoSync: true})
	s.Close()
	s.Close() // idempotent
	if err := s.Put(job("late", 1, 1, StateDone)); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

// TestSnapshotFailpoint: a failed compaction leaves the WAL intact and
// the store usable.
func TestSnapshotFailpoint(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true, SnapshotEvery: -1})
	for i := int64(1); i <= 3; i++ {
		if err := s.Put(job(fmt.Sprintf("j%d", i), i, 1, StateDone)); err != nil {
			t.Fatal(err)
		}
	}
	if err := failpoint.Arm(FailpointSnapshot, "times(1):error"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err == nil {
		t.Fatal("faulted Compact succeeded")
	}
	// The WAL still holds everything; a retry succeeds.
	if err := s.Compact(); err != nil {
		t.Fatalf("retry Compact: %v", err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{NoSync: true})
	defer s2.Close()
	if got := len(s2.Jobs()); got != 3 {
		t.Fatalf("recovered %d jobs, want 3", got)
	}
}

// TestEventJournal: op "events" batches survive reopen in order, ride
// snapshots, honor the per-job cap, and vanish with their job.
func TestEventJournal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true})
	if err := s.Put(job("j1", 1, 1, StatePending)); err != nil {
		t.Fatal(err)
	}
	batch := func(seqs ...int) []json.RawMessage {
		var out []json.RawMessage
		for _, q := range seqs {
			out = append(out, json.RawMessage(fmt.Sprintf(`{"seq":%d,"kind":"attr"}`, q)))
		}
		return out
	}
	if err := s.AppendEvents("j1", batch(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("j1", batch(4, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("j1", nil); err != nil { // no-op, not a WAL record
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{NoSync: true})
	evs := s2.Events("j1")
	if len(evs) != 5 {
		t.Fatalf("recovered %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		want := fmt.Sprintf(`{"seq":%d,"kind":"attr"}`, i+1)
		if string(ev) != want {
			t.Fatalf("event %d = %s, want %s", i, ev, want)
		}
	}
	if st := s2.Stats(); st.Events != 5 {
		t.Fatalf("Stats.Events = %d, want 5", st.Events)
	}

	// Snapshot carries the journal; the reopened WAL is empty.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, dir, Options{NoSync: true})
	if got := len(s3.Events("j1")); got != 5 {
		t.Fatalf("post-snapshot recovery: %d events, want 5", got)
	}

	// Dropping the job drops its journal.
	if err := s3.Drop("j1"); err != nil {
		t.Fatal(err)
	}
	if s3.Events("j1") != nil {
		t.Fatal("events survived their job's drop")
	}
	s3.Close()
	s4 := mustOpen(t, dir, Options{NoSync: true})
	defer s4.Close()
	if s4.Events("j1") != nil {
		t.Fatal("events resurrected on replay after drop")
	}
}

// TestEventJournalCap: the per-job bound keeps the newest events.
func TestEventJournalCap(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true, MaxEventsPerJob: 4})
	if err := s.Put(job("j1", 1, 1, StateRunning)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		ev := json.RawMessage(fmt.Sprintf(`{"seq":%d}`, i))
		if err := s.AppendEvents("j1", []json.RawMessage{ev}); err != nil {
			t.Fatal(err)
		}
	}
	check := func(s *Store, when string) {
		t.Helper()
		evs := s.Events("j1")
		if len(evs) != 4 || string(evs[0]) != `{"seq":7}` || string(evs[3]) != `{"seq":10}` {
			t.Fatalf("%s: journal = %v, want newest 4 (7..10)", when, evs)
		}
	}
	check(s, "live")
	s.Close()
	s2 := mustOpen(t, dir, Options{NoSync: true, MaxEventsPerJob: 4})
	defer s2.Close()
	check(s2, "recovered")

	// Journaling disabled entirely.
	dir2 := t.TempDir()
	s3 := mustOpen(t, dir2, Options{NoSync: true, MaxEventsPerJob: -1})
	defer s3.Close()
	if err := s3.AppendEvents("x", []json.RawMessage{json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	if s3.Events("x") != nil {
		t.Fatal("MaxEventsPerJob<0 must disable journaling")
	}
}
