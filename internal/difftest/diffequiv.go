// Differential-equivalence oracles: metamorphic model mutations with a
// known ground truth for the version-equivalence engine (internal/equiv).
// Equivalence-preserving mutations (table-action reorder, dead-table
// insert) must keep the diff verdict "equivalent"; an observable constant
// flip witnessed by a concrete batch replay must flip it to "divergent".
package difftest

import (
	"context"
	"fmt"
	"sort"

	"p4assert/internal/core"
	"p4assert/internal/equiv"
	"p4assert/internal/fuzzgen"
	"p4assert/internal/interp"
	"p4assert/internal/model"
	"p4assert/internal/p4"
	"p4assert/internal/translate"
)

// ReorderFirstFork rewrites the model in place, rotating the branches of
// the first fork that has at least two uniquely-labelled branches (the
// model of reordering a table's action list, which the control plane
// ranks by label, not position). Semantics-preserving: each branch keeps
// its label and body, so the label→behaviour mapping is unchanged.
// Returns false when no such fork exists.
func ReorderFirstFork(m *model.Program) bool {
	done := false
	var visit func(body []model.Stmt)
	visit = func(body []model.Stmt) {
		for _, s := range body {
			if done {
				return
			}
			switch st := s.(type) {
			case *model.If:
				visit(st.Then)
				visit(st.Else)
			case *model.Fork:
				if len(st.Branches) >= 2 && uniqueLabels(st.Labels) {
					st.Labels = append(st.Labels[1:], st.Labels[0])
					st.Branches = append(st.Branches[1:], st.Branches[0])
					done = true
					return
				}
				for _, b := range st.Branches {
					visit(b)
				}
			}
		}
	}
	visitFuncs(m, &done, visit)
	return done
}

func uniqueLabels(labels []string) bool {
	seen := map[string]bool{}
	for _, l := range labels {
		if seen[l] {
			return false
		}
		seen[l] = true
	}
	return true
}

// InsertDeadTable rewrites the model in place, appending a pipeline stage
// that models a table nothing depends on: a fresh symbolic key forks over
// two actions that write only a fresh dead global. The mutant has twice
// the paths but identical observable behaviour on every one of them.
func InsertDeadTable(m *model.Program) bool {
	const fn = "$deadtable"
	if _, dup := m.Funcs[fn]; dup {
		return false
	}
	sel := fn + ".$action"
	key := fn + ".key"
	out := fn + ".port"
	m.AddGlobal(sel, 8, false, 0)
	m.AddGlobal(key, 8, false, 0)
	m.AddGlobal(out, 9, false, 0)
	m.AddFunc(&model.Func{Name: fn, Body: []model.Stmt{
		&model.MakeSymbolic{Var: key, Hint: key},
		&model.Fork{
			Selector: sel,
			Labels:   []string{"dead_miss", "dead_hit"},
			Branches: [][]model.Stmt{
				{
					&model.Assign{LHS: sel, RHS: &model.Const{Width: 8, Val: 0}},
					&model.Assign{LHS: out, RHS: &model.Const{Width: 9, Val: 0}},
				},
				{
					&model.Assign{LHS: sel, RHS: &model.Const{Width: 8, Val: 1}},
					&model.Assign{LHS: out, RHS: &model.Ref{Name: key}},
				},
			},
		},
	}})
	m.Entry = append(m.Entry, fn)
	return true
}

// FlipEgressConstant rewrites the model in place, XOR-ing 1 into the
// right-hand side of the first assignment to an egress-port global: the
// canonical "constant flip" version bug — a changed forwarding decision
// that any packet reaching the assignment observes.
func FlipEgressConstant(m *model.Program) bool {
	const suffix = ".egress_spec"
	done := false
	var visit func(body []model.Stmt)
	visit = func(body []model.Stmt) {
		for i, s := range body {
			if done {
				return
			}
			switch st := s.(type) {
			case *model.Assign:
				if len(st.LHS) > len(suffix) && st.LHS[len(st.LHS)-len(suffix):] == suffix {
					w := 9
					if g, ok := m.Global(st.LHS); ok {
						w = g.Width
					}
					body[i] = &model.Assign{
						LHS: st.LHS,
						RHS: &model.Bin{Op: model.OpXor, X: st.RHS, Y: &model.Const{Width: w, Val: 1}},
					}
					done = true
					return
				}
			case *model.If:
				visit(st.Then)
				visit(st.Else)
			case *model.Fork:
				for _, b := range st.Branches {
					visit(b)
				}
			}
		}
	}
	visitFuncs(m, &done, visit)
	return done
}

// visitFuncs applies visit to every function body until *done flips: entry
// functions in pipeline order first, then the rest (action bodies, table
// helpers — called from entries rather than listed in Entry) in sorted
// name order for determinism.
func visitFuncs(m *model.Program, done *bool, visit func([]model.Stmt)) {
	for _, name := range m.Entry {
		if fn, ok := m.Funcs[name]; ok && !*done {
			visit(fn.Body)
		}
	}
	if *done {
		return
	}
	names := make([]string, 0, len(m.Funcs))
	for name := range m.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if *done {
			return
		}
		visit(m.Funcs[name].Body)
	}
}

// DiffResult summarizes one program's run through the equivalence-oracle
// battery.
type DiffResult struct {
	Seed uint64
	// Mutants is how many mutants were diffed against the original.
	Mutants int
	// FlipDetected reports that the constant-flip mutant was built and the
	// engine flagged it divergent.
	FlipDetected bool
	// FlipWitnessed reports that the concrete batch replay independently
	// witnessed the flip diverging (the hard ground truth).
	FlipWitnessed bool
	// Skipped reports that a product exploration exhausted its budget, so
	// the corresponding verdict was not checked.
	Skipped bool
}

// freshModel translates the generated program anew (mutations are applied
// in place, so every mutant needs its own model).
func freshModel(p *fuzzgen.Program) (*model.Program, *p4.Program, error) {
	prog, err := p4.Parse(p.Name()+".p4", p.Source())
	if err != nil {
		return nil, nil, fmt.Errorf("seed %d: generated program does not parse: %w", p.Seed, err)
	}
	if err := prog.Check(); err != nil {
		return nil, nil, fmt.Errorf("seed %d: generated program does not typecheck: %w", p.Seed, err)
	}
	m, err := translate.Translate(prog, translate.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("seed %d: translate: %w", p.Seed, err)
	}
	return m, prog, nil
}

// CheckDiff runs one generated program through the equivalence-oracle
// battery: self-diff and equivalence-preserving mutants must come back
// "equivalent"; the constant-flip mutant must come back "divergent"
// whenever the concrete batch replay independently witnesses the
// divergence. A *Mismatch names the oracle that disagreed.
func CheckDiff(p *fuzzgen.Program) (*DiffResult, error) {
	res := &DiffResult{Seed: p.Seed}
	base, prog, err := freshModel(p)
	if err != nil {
		return nil, err
	}
	eopts := equiv.Options{MaxPaths: DefaultMaxPaths}

	diff := func(mutant *model.Program, oracle string, wantEquivalent bool) error {
		rep, derr := equiv.DiffModels(context.Background(), base, mutant, eopts)
		if derr != nil {
			return fmt.Errorf("seed %d: %s: %w", p.Seed, oracle, derr)
		}
		if rep.Exhausted {
			res.Skipped = true
			return nil
		}
		res.Mutants++
		if wantEquivalent && !rep.Equivalent {
			return &Mismatch{
				Seed: p.Seed, Oracle: oracle, Config: "diff",
				Err: fmt.Errorf("semantics-preserving mutant reported divergent: %v", rep.Divergences),
			}
		}
		if !wantEquivalent && rep.Equivalent {
			return &Mismatch{
				Seed: p.Seed, Oracle: oracle, Config: "diff",
				Err: fmt.Errorf("concretely-witnessed divergence reported equivalent"),
			}
		}
		if !wantEquivalent {
			res.FlipDetected = !rep.Equivalent
		}
		return nil
	}

	// Identity: a program is equivalent to an independent translation of
	// itself.
	self, _, err := freshModel(p)
	if err != nil {
		return nil, err
	}
	if err := diff(self, "diff-self", true); err != nil {
		return res, err
	}

	// Equivalence-preserving mutations.
	if reordered, _, err := freshModel(p); err != nil {
		return nil, err
	} else if ReorderFirstFork(reordered) {
		if err := diff(reordered, "diff-reorder", true); err != nil {
			return res, err
		}
	}
	if dead, _, err := freshModel(p); err != nil {
		return nil, err
	} else if InsertDeadTable(dead) {
		if err := diff(dead, "diff-deadtable", true); err != nil {
			return res, err
		}
	}

	// Equivalence-breaking mutation, arbitrated by the concrete oracle:
	// the original's generated test suite replays through the mutant in
	// batch; any outcome mismatch is a concrete witness the symbolic
	// verdict must agree with. (Without a witness the flip may sit on an
	// unreachable or post-drop assignment, and either verdict is sound.)
	flipped, _, err := freshModel(p)
	if err != nil {
		return nil, err
	}
	if !FlipEgressConstant(flipped) {
		return res, nil
	}
	cases, err := core.GenerateTests(prog, core.Options{MaxPaths: DefaultMaxPaths})
	if err != nil {
		return nil, fmt.Errorf("seed %d: generate tests: %w", p.Seed, err)
	}
	res.FlipWitnessed, err = witnessDivergence(flipped, cases)
	if err != nil {
		return nil, fmt.Errorf("seed %d: batch replay: %w", p.Seed, err)
	}
	if res.FlipWitnessed {
		if err := diff(flipped, "diff-flip", false); err != nil {
			return res, err
		}
	} else if err := diffAny(p, base, flipped, eopts, res); err != nil {
		return res, err
	}
	return res, nil
}

// diffAny runs the flip diff without a ground-truth requirement (no
// concrete witness): either verdict is acceptable, but the run itself must
// not error, and a divergent verdict is recorded as a detection.
func diffAny(p *fuzzgen.Program, base, mutant *model.Program, eopts equiv.Options, res *DiffResult) error {
	rep, err := equiv.DiffModels(context.Background(), base, mutant, eopts)
	if err != nil {
		return fmt.Errorf("seed %d: diff-flip: %w", p.Seed, err)
	}
	if rep.Exhausted {
		res.Skipped = true
		return nil
	}
	res.Mutants++
	res.FlipDetected = !rep.Equivalent
	return nil
}

// witnessDivergence replays the original program's generated test suite
// through the mutant in batch mode and reports whether any case's
// wire-observable outcome differs — the same observation semantics the
// equivalence engine checks symbolically: halt flag, forward flag, egress
// port only while both versions forward (a dropped packet's egress_spec
// never reaches the wire), and the failed-assertion set. Cases whose trace
// does not structurally replay or whose path assumptions fail in the
// mutant are precondition mismatches, not wire observations, and do not
// count as witnesses.
func witnessDivergence(mutant *model.Program, cases []core.TestCase) (bool, error) {
	c, err := interp.Compile(mutant, interp.CompileOptions{})
	if err != nil {
		return false, err
	}
	ins := make([][]uint64, len(cases))
	decs := make([][]interp.Decision, len(cases))
	for i, tc := range cases {
		ins[i] = c.LoadInputs(tc.Inputs)
		decs[i], err = c.LoadTrace(tc.Trace)
		if err != nil {
			return false, fmt.Errorf("case %d: %w", i, err)
		}
	}
	ex := c.NewExec()
	for i := range cases {
		res := ex.Run(ins[i], decs[i])
		if res.TraceErr != nil || res.AssumeViolated {
			continue
		}
		tc := &cases[i]
		fwd := res.Forward == 1
		if res.Halted != tc.Halted || fwd != tc.Forwarded {
			return true, nil
		}
		if fwd && tc.Forwarded && res.Egress != tc.EgressSpec {
			return true, nil
		}
		got := res.FailureIDs()
		sort.Ints(got)
		want := append([]int(nil), tc.FailedAsserts...)
		sort.Ints(want)
		if len(got) != len(want) {
			return true, nil
		}
		for k := range got {
			if got[k] != want[k] {
				return true, nil
			}
		}
	}
	return false, nil
}

// CheckDiffSeed is CheckDiff over a generator seed.
func CheckDiffSeed(seed uint64) (*DiffResult, error) {
	return CheckDiff(fuzzgen.Generate(seed))
}
