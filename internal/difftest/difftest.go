// Package difftest is the oracle battery of the differential fuzzing
// subsystem: it drives generated programs (internal/fuzzgen) through the
// verification pipeline and checks two oracle families.
//
// Differential oracles compare the two independent implementations of the
// IR semantics: every path test collected by the symbolic executor must
// replay to an identical observable outcome in the concrete interpreter
// (core.ReplayTests), and every violation counterexample must reproduce
// its assertion failure concretely (core.ReplayAll). This mirrors the
// paper's §6 validation of its C models against BMv2.
//
// Metamorphic oracles compare the pipeline against itself under
// semantics-preserving transformations: the set of violated assertions
// must be invariant across the technique matrix (baseline, -O3, executor
// optimization, slicing, submodel parallelization), and a run under a
// concrete forwarding-rule configuration must find a subset of the
// violations of the fully symbolic run.
package difftest

import (
	"fmt"
	"sort"

	"p4assert/internal/core"
	"p4assert/internal/fuzzgen"
	"p4assert/internal/model"
	"p4assert/internal/p4"
)

// DefaultMaxPaths bounds exploration per run; generated programs are small
// (typically well under a thousand paths), so hitting the bound marks the
// program as skipped rather than failing an oracle.
const DefaultMaxPaths = 20000

// Config is one pipeline configuration of the metamorphic matrix.
type Config struct {
	Name string
	Opts core.Options
}

// Matrix returns the technique matrix, baseline first. Every configuration
// must produce the same violated-assertion set on the same program.
func Matrix() []Config {
	return []Config{
		{Name: "baseline", Opts: core.Options{}},
		{Name: "O3", Opts: core.Options{O3: true}},
		{Name: "opt", Opts: core.Options{Opt: true}},
		{Name: "slice", Opts: core.Options{Slice: true}},
		{Name: "parallel", Opts: core.Options{Parallel: 4}},
	}
}

// Result summarizes one checked program.
type Result struct {
	Seed uint64
	// Paths is the baseline run's completed path count.
	Paths int64
	// Tests is how many collected path tests were replayed differentially.
	Tests int
	// Violated is the baseline violated-assertion set.
	Violated []int
	// Configs is how many matrix configurations were compared.
	Configs int
	// RulesRun reports that the rules-vs-symbolic oracle also ran.
	RulesRun bool
	// Skipped reports that exploration exhausted its budget, so the
	// cross-configuration comparisons were not performed.
	Skipped bool
}

// Mismatch is an oracle failure: the fuzzer found a disagreement between
// pipeline components that must agree.
type Mismatch struct {
	Seed   uint64
	Oracle string // "differential", "replay", "metamorphic", "rules"
	Config string // matrix configuration involved
	Err    error
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("seed %d: %s oracle failed (config %s): %v",
		m.Seed, m.Oracle, m.Config, m.Err)
}

func (m *Mismatch) Unwrap() error { return m.Err }

// CheckSeed generates and checks the program for one seed.
func CheckSeed(seed uint64) (*Result, error) {
	return Check(fuzzgen.Generate(seed))
}

// Check runs one generated program through the full oracle battery. A nil
// error means every oracle agreed; a *Mismatch describes the first
// disagreement (any other error is an infrastructure failure — those are
// findings too, since generated programs are well-typed by construction).
func Check(p *fuzzgen.Program) (*Result, error) {
	prog, err := p4.Parse(p.Name()+".p4", p.Source())
	if err != nil {
		return nil, fmt.Errorf("seed %d: generated program does not parse: %w", p.Seed, err)
	}
	if err := prog.Check(); err != nil {
		return nil, fmt.Errorf("seed %d: generated program does not typecheck: %w", p.Seed, err)
	}
	res := &Result{Seed: p.Seed}

	matrix := Matrix()
	baseOpts := matrix[0].Opts
	baseOpts.CollectTests = true
	baseOpts.MaxPaths = DefaultMaxPaths
	base, err := core.VerifyProgram(prog, baseOpts)
	if err != nil {
		return nil, fmt.Errorf("seed %d: baseline run: %w", p.Seed, err)
	}
	res.Paths = base.Metrics.Paths
	res.Tests = len(base.Tests)
	res.Violated = base.VerdictSet()

	// Differential family: whole-path outcomes and counterexamples must
	// replay identically through the independent concrete interpreter.
	if err := core.ReplayTests(base); err != nil {
		return res, &Mismatch{Seed: p.Seed, Oracle: "differential", Config: "baseline", Err: err}
	}
	if err := core.ReplayAll(base); err != nil {
		return res, &Mismatch{Seed: p.Seed, Oracle: "replay", Config: "baseline", Err: err}
	}
	if base.Exhausted {
		res.Skipped = true
		return res, nil
	}

	// Metamorphic family: the violated-assertion set is invariant across
	// the technique matrix, and each configuration's counterexamples must
	// reproduce on that configuration's own model.
	for _, cfg := range matrix[1:] {
		opts := cfg.Opts
		opts.MaxPaths = DefaultMaxPaths
		rep, err := core.VerifyProgram(prog, opts)
		if err != nil {
			return res, fmt.Errorf("seed %d: %s run: %w", p.Seed, cfg.Name, err)
		}
		if rep.Exhausted {
			res.Skipped = true
			continue
		}
		if !core.SameVerdictSet(base, rep) {
			return res, &Mismatch{
				Seed: p.Seed, Oracle: "metamorphic", Config: cfg.Name,
				Err: fmt.Errorf("verdicts diverge: baseline %s, %s %s",
					base.VerdictDigest(), cfg.Name, rep.VerdictDigest()),
			}
		}
		if err := core.ReplayAll(rep); err != nil {
			return res, &Mismatch{Seed: p.Seed, Oracle: "replay", Config: cfg.Name, Err: err}
		}
		res.Configs++
	}

	// Rules oracle: a concrete control-plane configuration restricts the
	// symbolic run's behaviours, so its violations are a subset; its paths
	// must also replay differentially on the rules-specialized model.
	rs, err := p.Rules()
	if err != nil {
		return nil, fmt.Errorf("seed %d: rules: %w", p.Seed, err)
	}
	if rs != nil {
		opts := core.Options{Rules: rs, CollectTests: true, MaxPaths: DefaultMaxPaths}
		rep, err := core.VerifyProgram(prog, opts)
		if err != nil {
			return res, fmt.Errorf("seed %d: rules run: %w", p.Seed, err)
		}
		if err := core.ReplayTests(rep); err != nil {
			return res, &Mismatch{Seed: p.Seed, Oracle: "differential", Config: "rules", Err: err}
		}
		if err := core.ReplayAll(rep); err != nil {
			return res, &Mismatch{Seed: p.Seed, Oracle: "replay", Config: "rules", Err: err}
		}
		if !rep.Exhausted && !core.SubsetVerdictSet(rep, base) {
			return res, &Mismatch{
				Seed: p.Seed, Oracle: "rules", Config: "rules",
				Err: fmt.Errorf("rules-run violations %v not a subset of symbolic %s",
					rep.VerdictSet(), base.VerdictDigest()),
			}
		}
		res.RulesRun = true
	}
	return res, nil
}

// Oracle classifies an error from Check for minimization: shrunk
// candidates must fail the same oracle as the original to count as
// reproducing.
func Oracle(err error) string {
	if m, ok := err.(*Mismatch); ok {
		return m.Oracle
	}
	if err != nil {
		return "error"
	}
	return ""
}

// Shrink minimizes a failing program: deletions are kept while the
// candidate still fails the same oracle. Returns p unchanged when p does
// not fail at all.
func Shrink(p *fuzzgen.Program, maxAttempts int) *fuzzgen.Program {
	_, err := Check(p)
	if err == nil {
		return p
	}
	oracle := Oracle(err)
	return fuzzgen.Minimize(p, func(c *fuzzgen.Program) bool {
		_, cerr := Check(c)
		return Oracle(cerr) == oracle
	}, maxAttempts)
}

// FlipFirstCompare rewrites the model in place, inverting the first
// comparison operator it encounters (Lt→Ge, Eq→Ne, ...). It is the
// canonical injected semantics bug for validating the oracle battery: a
// pipeline stage miscompiling a comparison this way must be caught by the
// metamorphic (verdict-set) or differential (outcome digest) oracle within
// a small number of generated programs. Returns false when the model
// contains no comparison.
func FlipFirstCompare(m *model.Program) bool {
	flip := map[model.Op]model.Op{
		model.OpEq: model.OpNe, model.OpNe: model.OpEq,
		model.OpLt: model.OpGe, model.OpGe: model.OpLt,
		model.OpLe: model.OpGt, model.OpGt: model.OpLe,
	}
	done := false
	var visitExpr func(e model.Expr)
	visitExpr = func(e model.Expr) {
		if done || e == nil {
			return
		}
		switch x := e.(type) {
		case *model.Bin:
			if to, ok := flip[x.Op]; ok {
				x.Op = to
				done = true
				return
			}
			visitExpr(x.X)
			visitExpr(x.Y)
		case *model.Un:
			visitExpr(x.X)
		case *model.Cond:
			visitExpr(x.C)
			visitExpr(x.T)
			visitExpr(x.F)
		case *model.Cast:
			visitExpr(x.X)
		}
	}
	var visitBody func(body []model.Stmt)
	visitBody = func(body []model.Stmt) {
		for _, s := range body {
			if done {
				return
			}
			switch st := s.(type) {
			case *model.Assign:
				visitExpr(st.RHS)
			case *model.If:
				visitExpr(st.Cond)
				visitBody(st.Then)
				visitBody(st.Else)
			case *model.Fork:
				for _, b := range st.Branches {
					visitBody(b)
				}
			case *model.Assume:
				visitExpr(st.Cond)
			case *model.AssertCheck:
				visitExpr(st.Cond)
			}
		}
	}
	for _, name := range m.Entry {
		if fn, ok := m.Funcs[name]; ok && !done {
			visitBody(fn.Body)
		}
	}
	if !done {
		names := make([]string, 0, len(m.Funcs))
		for name := range m.Funcs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if done {
				break
			}
			visitBody(m.Funcs[name].Body)
		}
	}
	return done
}
