package difftest

import (
	"p4assert/internal/fuzzgen"

	"testing"
)

// FuzzDiff is the native `go test -fuzz` entry point over the
// differential-equivalence oracle battery: for every generator seed, the
// version-equivalence engine must call semantics-preserving mutants
// (action reorder, dead-table insert) equivalent and concretely-witnessed
// constant flips divergent. Any saved crasher is a one-number reproducer.
func FuzzDiff(f *testing.F) {
	for seed := uint64(1); seed <= 20; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if _, err := CheckDiffSeed(seed); err != nil {
			t.Fatalf("equivalence oracle battery failed: %v", err)
		}
	})
}

// TestDiffSeedsClean runs the equivalence battery over a seed range and
// checks its two detection properties in aggregate: the concrete batch
// oracle witnesses the constant flip for at least one seed (so the
// must-diverge direction was actually exercised), and every witnessed
// flip was flagged by the symbolic engine (enforced per-seed inside
// CheckDiff — an escape returns a Mismatch).
func TestDiffSeedsClean(t *testing.T) {
	n := uint64(40)
	if testing.Short() {
		n = 10
	}
	witnessed, detected, skipped := 0, 0, 0
	for seed := uint64(0); seed < n; seed++ {
		res, err := CheckDiffSeed(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Skipped {
			skipped++
		}
		if res.FlipWitnessed {
			witnessed++
		}
		if res.FlipDetected {
			detected++
		}
	}
	if witnessed == 0 {
		t.Fatal("no seed produced a concretely-witnessed flip divergence — the must-diverge oracle never ran")
	}
	if detected < witnessed {
		t.Fatalf("engine detected %d flips but %d were witnessed (CheckDiff should have failed first)", detected, witnessed)
	}
	if skipped > int(n)/2 {
		t.Fatalf("too many skipped seeds: %d of %d exhausted the product-path budget", skipped, n)
	}
}

// TestMutatorsApply pins that each mutator actually rewrites a known
// corpus of generated programs — a mutator that silently stops matching
// would turn the battery vacuous.
func TestMutatorsApply(t *testing.T) {
	applied := map[string]int{}
	for seed := uint64(0); seed < 10; seed++ {
		p := fuzzgen.Generate(seed)
		if m, _, err := freshModel(p); err == nil && ReorderFirstFork(m) {
			applied["reorder"]++
		}
		if m, _, err := freshModel(p); err == nil && InsertDeadTable(m) {
			applied["deadtable"]++
		}
		if m, _, err := freshModel(p); err == nil && FlipEgressConstant(m) {
			applied["flip"]++
		}
	}
	for _, name := range []string{"reorder", "deadtable", "flip"} {
		if applied[name] == 0 {
			t.Errorf("mutator %s never applied across 10 seeds", name)
		}
	}
}
