package difftest

import (
	"testing"

	"p4assert/internal/core"
	"p4assert/internal/fuzzgen"
	"p4assert/internal/p4"
	"p4assert/internal/translate"
)

// TestSeedsClean: a range of generated programs passes the full oracle
// battery — no disagreement between the symbolic executor, the concrete
// interpreter, and the technique matrix.
func TestSeedsClean(t *testing.T) {
	n := uint64(40)
	if testing.Short() {
		n = 10
	}
	checked, skipped := 0, 0
	for seed := uint64(0); seed < n; seed++ {
		res, err := Check(fuzzgen.Generate(seed))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, fuzzgen.Generate(seed).Source())
		}
		checked++
		if res.Skipped {
			skipped++
		}
		// Paths whose assertion fails on every input are killed without
		// completing (KLEE-style), so a program may legally yield zero
		// path tests — but only when it has violations to replay instead.
		if res.Tests == 0 && len(res.Violated) == 0 {
			t.Fatalf("seed %d: no path tests and no violations — nothing was checked", seed)
		}
	}
	if skipped > checked/2 {
		t.Fatalf("too many skipped programs: %d of %d exhausted their path budget", skipped, checked)
	}
}

// flipped translates the program and injects the canonical semantics bug
// (first comparison inverted), simulating a miscompiling pipeline stage.
func flipped(t *testing.T, prog *p4.Program) *core.Report {
	t.Helper()
	m, err := translate.Translate(prog, translate.Options{})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if !FlipFirstCompare(m) {
		return nil
	}
	rep, err := core.VerifyModel(m, core.Options{MaxPaths: DefaultMaxPaths})
	if err != nil {
		t.Fatalf("verify mutated model: %v", err)
	}
	return rep
}

// TestInjectedBugCaughtMetamorphic: a flipped comparison in a pipeline
// stage shows up as a verdict-set divergence from the baseline within a
// small number of generated programs — the detection property the
// subsystem exists to provide.
func TestInjectedBugCaughtMetamorphic(t *testing.T) {
	limit := uint64(200)
	if testing.Short() {
		limit = 50
	}
	for seed := uint64(0); seed < limit; seed++ {
		p := fuzzgen.Generate(seed)
		prog, err := p4.Parse(p.Name()+".p4", p.Source())
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if err := prog.Check(); err != nil {
			t.Fatalf("seed %d: check: %v", seed, err)
		}
		base, err := core.VerifyProgram(prog, core.Options{MaxPaths: DefaultMaxPaths})
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		mut := flipped(t, prog)
		if mut == nil || base.Exhausted || mut.Exhausted {
			continue
		}
		if !core.SameVerdictSet(base, mut) {
			t.Logf("injected bug caught at seed %d (baseline %s, mutated %s)",
				seed, base.VerdictDigest(), mut.VerdictDigest())
			return
		}
	}
	t.Fatalf("injected comparison flip not detected within %d generated programs", limit)
}

// TestInjectedBugCaughtDifferential: path tests collected on the correct
// model fail to replay against a mutated model — the differential oracle
// catches an interpreter/executor semantics disagreement.
func TestInjectedBugCaughtDifferential(t *testing.T) {
	limit := uint64(200)
	if testing.Short() {
		limit = 50
	}
	for seed := uint64(0); seed < limit; seed++ {
		p := fuzzgen.Generate(seed)
		prog, err := p4.Parse(p.Name()+".p4", p.Source())
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if err := prog.Check(); err != nil {
			t.Fatalf("seed %d: check: %v", seed, err)
		}
		rep, err := core.VerifyProgram(prog, core.Options{CollectTests: true, MaxPaths: DefaultMaxPaths})
		if err != nil {
			t.Fatalf("seed %d: collect: %v", seed, err)
		}
		// Replace the executed model with a mutated twin: replaying the
		// recorded tests through the interpreter now exercises different
		// semantics than the symbolic predictions.
		m, err := translate.Translate(prog, translate.Options{})
		if err != nil {
			t.Fatalf("seed %d: translate: %v", seed, err)
		}
		if !FlipFirstCompare(m) {
			continue
		}
		rep.Model = m
		if core.ReplayTests(rep) != nil || core.ReplayAll(rep) != nil {
			t.Logf("differential oracle caught injected bug at seed %d", seed)
			return
		}
	}
	t.Fatalf("injected comparison flip not detected within %d generated programs", limit)
}

// TestShrinkKeepsFailure: Shrink on a program failing against a mutated
// pipeline keeps the failure while deleting spec elements. Exercised via a
// synthetic predicate through fuzzgen.Minimize inside Shrink: a clean
// program shrinks to itself.
func TestShrinkClean(t *testing.T) {
	p := fuzzgen.Generate(3)
	if got := Shrink(p, 20); got != p {
		t.Fatalf("Shrink modified a non-failing program")
	}
}
