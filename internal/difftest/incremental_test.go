package difftest

// Corpus-wide incremental-vs-cold equivalence: for every corpus program,
// generate a single-unit mutation (the canonical edit-verify-loop step),
// verify the mutated program cold with submodel parallelization, and
// verify it incrementally against a store warmed on the unmutated version.
// The two reports must be byte-identical under ComparableJSON — same
// violations, counterexamples, metrics, assertion table — for every
// program, or the incremental engine is replaying stale or wrong verdicts.

import (
	"context"
	"testing"

	"p4assert/internal/core"
	"p4assert/internal/incr"
	"p4assert/internal/p4"
	"p4assert/internal/progs"
)

// memStore is an unbounded in-memory incr.Store for tests.
type memStore map[string][]byte

func (m memStore) GetBytes(k string) ([]byte, bool)  { b, ok := m[k]; return b, ok }
func (m memStore) PutBytes(k string, b []byte) error { m[k] = b; return nil }

func TestIncrementalEquivalenceCorpus(t *testing.T) {
	ctx := context.Background()
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			file := p.Name + ".p4"
			mutated, mut, err := incr.MutateUnit(file, p.Source)
			if err != nil {
				// A program with no mutable integer literal cannot take a
				// single-unit edit; its unmutated round still checks below.
				t.Skipf("no mutation: %v", err)
			}
			opts := core.Options{Parallel: 4}

			// Warm the store on the unmutated program.
			store := memStore{}
			warm, _, err := core.VerifyIncrementalSource(ctx, file, "", p.Source, opts, store)
			if err != nil {
				t.Fatal(err)
			}
			// The warm-up itself must match a cold run (full-miss path).
			coldBase, err := verifyCold(t, file, p.Source, opts)
			if err != nil {
				t.Fatal(err)
			}
			mustComparable(t, "warm-up", coldBase, warm)

			// Incremental run of the mutated version against the warm store.
			incRep, man, err := core.VerifyIncremental(ctx, parseChecked(t, file, p.Source), mutated, opts, store)
			if err != nil {
				t.Fatal(err)
			}
			// MutateUnit is deterministic: mutating afresh yields an AST
			// instance independent of the one the incremental run executed.
			mutatedAgain, _, err := incr.MutateUnit(file, p.Source)
			if err != nil {
				t.Fatal(err)
			}
			coldMut, err := core.VerifyProgram(mutatedAgain, opts)
			if err != nil {
				t.Fatal(err)
			}
			mustComparable(t, "mutated "+mut.Unit, coldMut, incRep)

			if man.Reused+man.Executed != man.Submodels {
				t.Fatalf("manifest accounting: reused %d + executed %d != submodels %d",
					man.Reused, man.Executed, man.Submodels)
			}
			if man.Executed == 0 {
				t.Fatalf("semantic edit to %s executed no submodels", mut.Unit)
			}
		})
	}
}

// verifyCold runs the ordinary parallel pipeline on source.
func verifyCold(t *testing.T, file, source string, opts core.Options) (*core.Report, error) {
	t.Helper()
	return core.VerifyProgram(parseChecked(t, file, source), opts)
}

func parseChecked(t *testing.T, file, source string) *p4.Program {
	t.Helper()
	prog, err := p4.Parse(file, source)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Check(); err != nil {
		t.Fatal(err)
	}
	return prog
}

func mustComparable(t *testing.T, label string, cold, inc *core.Report) {
	t.Helper()
	a, err := cold.ComparableJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.ComparableJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("%s: incremental report differs from cold run\ncold: %s\nincr: %s", label, a, b)
	}
}
