package difftest

import (
	"testing"

	"p4assert/internal/fuzzgen"
)

// FuzzPipeline is the native `go test -fuzz` entry point over the
// generator corpus: the fuzzing engine explores the 64-bit seed space and
// every seed's generated program must satisfy the full oracle battery.
// Any saved crasher is a one-number reproducer (`p4fuzz -seed N -count 1`).
func FuzzPipeline(f *testing.F) {
	for seed := uint64(1); seed <= 20; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if _, err := CheckSeed(seed); err != nil {
			t.Fatalf("oracle battery failed: %v", err)
		}
	})
}

// FuzzGenerate exercises the generator itself across the seed space:
// generation must terminate, be deterministic, and render a program that
// the shrinker's site census can walk.
func FuzzGenerate(f *testing.F) {
	for seed := uint64(1); seed <= 50; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		a := fuzzgen.Generate(seed)
		b := fuzzgen.Generate(seed)
		if a.Source() != b.Source() {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
		if a.Source() == "" {
			t.Fatalf("seed %d: empty program", seed)
		}
	})
}
