package difftest

// Corpus-wide solver-acceleration equivalence: for every corpus program
// and technique shape, reports under the accelerated solver stack
// (incremental sessions + normalized memo + portfolio racing) must be
// byte-identical under ComparableJSON to the compat path with every
// acceleration layer disabled. This is the acceptance gate that lets the
// acceleration subsystem claim to be a pure performance change: verdicts,
// counterexample models, and all comparable counters must not move.

import (
	"testing"

	"p4assert/internal/core"
	"p4assert/internal/progs"
	"p4assert/internal/solver"
)

func TestSolverAccelerationEquivalenceCorpus(t *testing.T) {
	modes := []struct {
		name string
		cfg  solver.Config
	}{
		{"session-only", solver.Config{DisablePortfolio: true}},
		{"memo-only", solver.Config{DisableSession: true}},
		{"portfolio", solver.Config{}},
	}
	shapes := []struct {
		name string
		opts core.Options
	}{
		{"parallel", core.Options{Parallel: 4}},
		{"sequential-opt", core.Options{Opt: true}},
	}
	compat := solver.Config{DisableSession: true, DisableMemo: true, DisablePortfolio: true}

	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			file := p.Name + ".p4"
			for _, shape := range shapes {
				base := shape.opts
				base.Solver = compat
				want, err := verifyCold(t, file, p.Source, base)
				if err != nil {
					t.Fatal(err)
				}
				for _, mode := range modes {
					opts := shape.opts
					opts.Solver = mode.cfg
					got, err := verifyCold(t, file, p.Source, opts)
					if err != nil {
						t.Fatal(err)
					}
					mustComparable(t, shape.name+"/"+mode.name, want, got)
				}
			}
		})
	}
}
