// Quickstart: annotate a P4 program with assertions and verify it.
//
// The program is the paper's Figure 5 pipeline: a dmac table whose entries
// either drop a packet or rewrite its destination MAC. Two assertions are
// checked: packets marked to drop are never forwarded, and only packets
// with TTL greater than zero are forwarded. The second one is violated —
// nothing checks the TTL — and the verifier prints a counterexample packet.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"p4assert"
)

const program = `
// The paper's Fig. 5 example, completed into a runnable pipeline.
const bit<16> TYPE_IPV4 = 0x0800;
const bit<9> DROP_PORT = 511;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}
header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}
struct parsed_packet_t {
    ethernet_t ethernet;
    ipv4_t ip;
}
struct meta_t {
    bit<32> nextHop;
}

parser TopParser(packet_in b, out parsed_packet_t headers, inout meta_t meta,
                 inout standard_metadata_t standard_metadata) {
    state start {
        b.extract(headers.ethernet);
        transition select(headers.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: reject;
        }
    }
    state parse_ipv4 {
        b.extract(headers.ip);
        transition accept;
    }
}

control TopPipe(inout parsed_packet_t headers, inout meta_t meta,
                inout standard_metadata_t standard_metadata) {
    action Drop() {
        mark_to_drop(standard_metadata);
        @assert("if(traverse_path(), !forward())");
    }
    action Set_dmac(bit<48> dmac) {
        headers.ethernet.dstAddr = dmac;
        standard_metadata.egress_spec = 1;
    }
    table dmac {
        key = { meta.nextHop : exact; }
        actions = { Drop; Set_dmac; }
        default_action = Drop;
    }
    apply {
        dmac.apply();
        @assert("if(forward(), headers.ip.ttl > 0)");
    }
}

control TopDeparser(packet_out b, in parsed_packet_t headers) {
    apply {
        b.emit(headers.ethernet);
        b.emit(headers.ip);
    }
}

V1Switch(TopParser, TopPipe, TopDeparser) main;
`

func main() {
	rep, err := p4assert.Verify("fig5.p4", program, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("checked %d assertions over %d paths (%d instructions, %v)\n",
		rep.AssertionCount, rep.Stats.Paths, rep.Stats.Instructions, rep.Stats.Time)

	if rep.Ok() {
		fmt.Println("all assertions hold")
		return
	}
	fmt.Printf("%d assertion(s) violated:\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  %s at %s\n", v.Assertion, v.Location)
		fmt.Printf("    counterexample packet: %s\n", p4assert.FormatCounterexample(v.Counterexample))
		fmt.Printf("    pipeline decisions:    %v\n", v.Trace)
	}
}
