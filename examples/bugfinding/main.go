// Bugfinding reproduces the paper's §5.1 experiments: the verifier is
// pointed at the embedded application corpus (Dapper, NetPaxos, DC.p4,
// Switch.p4, plus the two §2 motivating examples) and finds every bug the
// paper reports, each with a concrete counterexample packet. Every
// counterexample is then replayed through the concrete model interpreter
// (the paper's §6 validation) to confirm it reproduces.
//
// Run with: go run ./examples/bugfinding
package main

import (
	"fmt"
	"log"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/progs"
	"p4assert/internal/rules"
	"p4assert/internal/sym"
)

func main() {
	for _, p := range progs.All() {
		if len(p.ExpectedViolations) == 0 {
			continue // correct programs; see the corpus tests
		}
		fmt.Printf("=== %s ===\n", p.Title)
		fmt.Printf("    %s\n", p.Notes)

		opts := core.Options{}
		if p.Rules != "" {
			rs, err := rules.Parse(p.Rules)
			if err != nil {
				log.Fatal(err)
			}
			opts.Rules = rs
			fmt.Printf("    control plane: %d forwarding rules installed\n", rs.NumRules())
		}

		t0 := time.Now()
		rep, err := core.VerifySource(p.Name+".p4", p.Source, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    explored %d paths in %v (%d instructions)\n",
			rep.Metrics.Paths, time.Since(t0).Round(time.Microsecond), rep.Metrics.Instructions)

		for _, v := range rep.Violations {
			fmt.Printf("    BUG: %s\n", v.Info.Source)
			fmt.Printf("         at %s, violated on %d path(s)\n", v.Info.Location, v.Count)
			fmt.Printf("         counterexample: %s\n", sym.FormatModel(v.Model))
			ok, err := core.ReplayViolation(rep.Model, v)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("         concrete replay: reproduces=%v\n", ok)
		}
		fmt.Println()
	}
}
