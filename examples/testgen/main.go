// Testgen demonstrates path-complete test-case generation (the paper's §6
// "ongoing work", the role of p4pktgen): the symbolic engine enumerates
// every execution path of a program and emits one concrete input packet
// per path, with the expected forwarding outcome computed by the concrete
// model interpreter. The generated suite doubles as switch regression
// tests: feed each input to the target and compare the decision.
//
// Run with: go run ./examples/testgen
package main

import (
	"fmt"
	"log"

	"p4assert"
	"p4assert/internal/progs"
)

func main() {
	stag, err := progs.Get("stag")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("generating a path-complete test suite for sTag (color isolation)...")
	tests, err := p4assert.GenerateTests("stag.p4", stag.Source, nil)
	if err != nil {
		log.Fatal(err)
	}

	var forwarded, dropped int
	for _, tc := range tests {
		if tc.Forwarded {
			forwarded++
		} else {
			dropped++
		}
	}
	fmt.Printf("%d test cases (%d forwarding, %d dropping)\n\n", len(tests), forwarded, dropped)
	for i, tc := range tests {
		fmt.Printf("%2d: %s\n", i, tc.String())
	}

	fmt.Println("\nmodel excerpt (the translated verification model, paper Fig. 6):")
	dump, err := p4assert.DumpModel("stag.p4", stag.Source, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i, line := range splitLines(dump) {
		if i >= 18 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", line)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
