// Controlplane demonstrates verifying a data-plane program against
// specific control-plane configurations (paper §3.2 "Tables", §6
// "Interaction with the control plane"), using the paper's DC.p4
// misconfiguration scenario:
//
//   - configuring only the L3 ACL to deny a destination prefix does NOT
//     drop the traffic — the ACL merely flags packets, and the system ACL
//     must also be configured to act on the flag (the verifier finds the
//     leak and shows the leaking packet);
//   - adding the system-ACL rules makes the same assertion hold.
//
// Run with: go run ./examples/controlplane
package main

import (
	"fmt"
	"log"

	"p4assert"
	"p4assert/internal/progs"
)

func main() {
	dcp4, err := progs.Get("dcp4")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("DC.p4-style switch; property: packets to the blocked prefix are dropped")
	fmt.Println()

	check := func(label, ruleText string) {
		rs, err := p4assert.ParseRules(ruleText)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := p4assert.Verify("dcp4.p4", dcp4.Source, &p4assert.Options{Rules: rs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s (%d rules) ---\n", label, rs.NumRules())
		if rep.Ok() {
			fmt.Printf("    OK: the ACL policy is enforced on all %d paths\n", rep.Stats.Paths)
		} else {
			for _, v := range rep.Violations {
				fmt.Printf("    LEAK: %s\n", v.Assertion)
				fmt.Printf("          packet: %s\n", p4assert.FormatCounterexample(v.Counterexample))
				fmt.Printf("          decisions: %v\n", v.Trace)
			}
		}
		fmt.Println()
	}

	check("L3 ACL only (the paper's misconfiguration)", dcp4.Rules)
	check("L3 ACL + system ACL (completed configuration)", dcp4.FixedRules)
}
