// Speedup applies the paper's four §4 techniques to Dapper — the corpus's
// heaviest program — and compares verification time and executed
// instructions for each technique in isolation and combined, mirroring the
// paper's Table 2 row and §5.5 closing experiment.
//
// Run with: go run ./examples/speedup
package main

import (
	"fmt"
	"log"
	"time"

	"p4assert"
	"p4assert/internal/progs"
)

type variant struct {
	name   string
	source func(p *progs.Program) string
	opts   p4assert.Options
}

func main() {
	dapper, err := progs.Get("dapper")
	if err != nil {
		log.Fatal(err)
	}

	plain := func(p *progs.Program) string { return p.Source }
	constrained := func(p *progs.Program) string { return p.ConstrainedSource() }

	variants := []variant{
		{"Original (no optimizations)", plain, p4assert.Options{}},
		{"O3 (compiler passes)", plain, p4assert.Options{O3: true}},
		{"Opt (executor optimizations)", plain, p4assert.Options{Opt: true}},
		{"Constraints (@assume SYN-only)", constrained, p4assert.Options{}},
		{"Parallel (4 workers)", plain, p4assert.Options{Parallel: 4}},
		{"Slice (program slicing)", plain, p4assert.Options{Slice: true}},
		{"Combined (constraints+O3+Opt+parallel)", constrained,
			p4assert.Options{O3: true, Opt: true, Parallel: 4}},
	}

	fmt.Printf("Dapper: %s\n\n", dapper.Notes)
	var baseTime time.Duration
	var baseInstr int64
	for i, v := range variants {
		// Best of three for stable wall-clock numbers.
		var best *p4assert.Report
		for r := 0; r < 3; r++ {
			rep, err := p4assert.Verify("dapper.p4", v.source(dapper), &v.opts)
			if err != nil {
				log.Fatal(err)
			}
			if best == nil || rep.Stats.Time < best.Stats.Time {
				best = rep
			}
		}
		if i == 0 {
			baseTime, baseInstr = best.Stats.Time, best.Stats.Instructions
		}
		fmt.Printf("%-40s %10v  %8d instructions  %4d paths",
			v.name, best.Stats.Time.Round(time.Microsecond),
			best.Stats.Instructions, best.Stats.Paths)
		if i > 0 {
			fmt.Printf("  (time %+.1f%%, instructions %+.1f%%)",
				pct(baseTime.Seconds(), best.Stats.Time.Seconds()),
				pct(float64(baseInstr), float64(best.Stats.Instructions)))
		}
		if len(best.Violations) > 0 {
			fmt.Printf("  [bug still found]")
		}
		fmt.Println()
	}
	fmt.Println("\n(negative % = reduction; the paper reports -81.76% time for the combination)")
}

func pct(base, now float64) float64 {
	if base == 0 {
		return 0
	}
	return (now - base) / base * 100
}
