// Service demonstrates verification-as-a-service: it starts an
// in-process daemon (the same manager + HTTP handler behind
// cmd/p4served), submits corpus programs over real HTTP through the
// client behind `p4verify -remote`, and resubmits them to show the
// content-addressed result cache at work — the repeat run returns the
// byte-identical report without touching the symbolic executor.
//
// Run with: go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"p4assert/internal/progs"
	"p4assert/internal/service"
	"p4assert/internal/vcache"
)

func main() {
	cache, err := vcache.New(64, "")
	if err != nil {
		log.Fatal(err)
	}
	mgr := service.New(service.Config{Workers: 2, Cache: cache, JobTimeout: time.Minute})
	defer mgr.Shutdown(context.Background())
	srv := httptest.NewServer(service.Handler(mgr))
	defer srv.Close()
	fmt.Printf("p4served (in-process) listening on %s\n\n", srv.URL)

	client := &service.Client{Base: srv.URL, HTTP: srv.Client(), PollInterval: 10 * time.Millisecond}
	ctx := context.Background()

	for _, name := range []string{"dapper", "netpaxos"} {
		p, err := progs.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		req := service.JobRequest{
			Filename: name + ".p4",
			Source:   p.Source,
			Rules:    p.Rules,
			Options:  service.Techniques{O3: true, Slice: true},
		}
		for run := 1; run <= 2; run++ {
			start := time.Now()
			rep, st, err := client.Verify(ctx, req)
			if err != nil {
				log.Fatal(err)
			}
			src := "executed"
			if st.CacheHit {
				src = "cache hit"
			}
			fmt.Printf("%-10s run %d [%s]: %s in %s (%d paths, %d violation(s))\n",
				name, run, st.Technique, src, time.Since(start).Round(time.Microsecond),
				rep.Metrics.Paths, len(rep.Violations))
		}
		fmt.Println()
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d submitted, %d done, %d served from cache (cache: %d hits / %d misses)\n",
		stats.Submitted, stats.Done, stats.CacheHits, stats.Cache.Hits, stats.Cache.Misses)
}
