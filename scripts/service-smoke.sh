#!/usr/bin/env bash
# End-to-end smoke test of the verification service: build p4served and
# p4verify, start the daemon with a disk cache tier, submit corpus
# programs over HTTP twice, and assert the resubmissions were served
# from the result cache. Then restart the daemon and assert the disk
# tier survived. Used by CI (service-smoke job); runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:9746
BASE=http://$ADDR
WORK=$(mktemp -d)
trap 'kill "$SERVED_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/p4served" ./cmd/p4served
go build -o "$WORK/p4verify" ./cmd/p4verify
go build -o "$WORK/p4gen" ./cmd/p4gen

echo "== materialize example programs"
"$WORK/p4gen" -corpus dapper -o "$WORK/dapper.p4"
"$WORK/p4gen" -corpus netpaxos -o "$WORK/netpaxos.p4" -rules-out "$WORK/netpaxos.rules"

start_daemon() {
    "$WORK/p4served" -addr "$ADDR" -cache-dir "$WORK/cache" -workers 2 &
    SERVED_PID=$!
    for _ in $(seq 50); do
        curl -sf "$BASE/v1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "FAIL: daemon did not become healthy" >&2
    exit 1
}

# stat_field NAME prints the integer value of a top-level stats counter.
stat_field() {
    curl -sf "$BASE/v1/stats" | grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2
}

start_daemon
echo "== submit examples (expect misses, violations found)"
# Both programs carry paper-reported bugs: exit status 1 is the correct verdict.
"$WORK/p4verify" -remote "$BASE" -O3 "$WORK/dapper.p4" >/dev/null && exit_ok=0 || exit_ok=$?
[ "$exit_ok" -eq 1 ] || { echo "FAIL: dapper exit $exit_ok, want 1 (violations)"; exit 1; }
"$WORK/p4verify" -remote "$BASE" -O3 -rules "$WORK/netpaxos.rules" -json "$WORK/netpaxos.p4" >"$WORK/first.json" && exit_ok=0 || exit_ok=$?
[ "$exit_ok" -eq 1 ] || { echo "FAIL: netpaxos exit $exit_ok, want 1 (violations)"; exit 1; }

hits=$(stat_field cache_hits)
[ "$hits" -eq 0 ] || { echo "FAIL: $hits cache hits before any resubmission"; exit 1; }

echo "== resubmit (expect cache hits, identical report)"
"$WORK/p4verify" -remote "$BASE" -O3 "$WORK/dapper.p4" >/dev/null || true
"$WORK/p4verify" -remote "$BASE" -O3 -rules "$WORK/netpaxos.rules" -json "$WORK/netpaxos.p4" >"$WORK/second.json" || true
cmp "$WORK/first.json" "$WORK/second.json" || { echo "FAIL: cached report differs from live one"; exit 1; }

hits=$(stat_field cache_hits)
[ "$hits" -eq 2 ] || { echo "FAIL: cache_hits=$hits after resubmission, want 2"; exit 1; }
echo "   cache_hits=$hits"

echo "== metrics exposition"
# The families asserted here are the monitoring contract; the list is
# mirrored in internal/service/metrics_test.go (requiredFamilies).
curl -sf "$BASE/v1/metrics" >"$WORK/metrics.txt"
for fam in p4served_jobs_submitted_total p4served_jobs_done_total \
           p4served_job_duration_seconds p4served_stage_duration_seconds \
           p4served_paths_explored_total p4served_solver_queries_total \
           p4assert_solver_session_reuse_hits_total p4assert_solver_memo_hits_total \
           p4assert_solver_sat_decisions_total \
           p4served_queue_depth p4served_workers; do
    grep -q "^# TYPE $fam " "$WORK/metrics.txt" || {
        echo "FAIL: metric family $fam missing from /v1/metrics"; exit 1; }
done
grep -q 'technique=' "$WORK/metrics.txt" || { echo "FAIL: no per-technique series"; exit 1; }
grep -q 'stage="execute"' "$WORK/metrics.txt" || { echo "FAIL: no per-stage series"; exit 1; }
echo "   $(grep -c '^# TYPE ' "$WORK/metrics.txt") metric families exposed"

echo "== restart daemon: disk tier must survive"
kill "$SERVED_PID" && wait "$SERVED_PID" 2>/dev/null || true
start_daemon
"$WORK/p4verify" -remote "$BASE" -O3 "$WORK/dapper.p4" >/dev/null || true
disk=$(stat_field disk_hits)
[ "$disk" -eq 1 ] || { echo "FAIL: disk_hits=$disk after restart, want 1"; exit 1; }
echo "   disk_hits=$disk"

echo "PASS: service smoke"
