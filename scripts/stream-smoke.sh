#!/usr/bin/env bash
# Live-streaming smoke test of the job event feed: follow a remote job
# end-to-end through p4verify -remote -follow, then open a raw SSE
# stream on a slow job, SIGKILL the daemon mid-run, restart it on the
# same store, and assert the resumed feed is a prefix-consistent
# continuation — the pre-crash capture matches the restarted daemon's
# replay up to the crash window, a "resumed" lifecycle marker appears,
# and Last-Event-ID resumption returns exactly the remaining suffix.
# Used by CI (stream-smoke job); runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:9748
BASE=http://$ADDR
WORK=$(mktemp -d)
SERVED_PID=
trap 'kill -9 "$SERVED_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/p4served" ./cmd/p4served
go build -o "$WORK/p4verify" ./cmd/p4verify
go build -o "$WORK/p4gen" ./cmd/p4gen

echo "== materialize example programs"
"$WORK/p4gen" -corpus fabric -o "$WORK/fabric.p4"

# slow.p4: 21 sequential branches ~= 2M paths (tens of seconds on one
# worker), so the job is still streaming events when the SIGKILL lands.
{
    printf 'header h_t {'
    for i in $(seq 0 20); do printf ' bit<8> f%d;' "$i"; done
    printf ' }\nstruct headers_t { h_t h; }\nstruct metadata_t { bit<8> m; }\n'
    cat <<'EOF'
parser P(packet_in pkt, out headers_t hdr, inout metadata_t meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout headers_t hdr, inout metadata_t meta,
          inout standard_metadata_t standard_metadata) {
    apply {
EOF
    for i in $(seq 0 20); do
        printf '        if (hdr.h.f%d > 7) { meta.m = meta.m + 1; }\n' "$i"
    done
    cat <<'EOF'
        @assert("meta.m != 255");
    }
}
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.h); } }
V1Switch(P, I, D) main;
EOF
} > "$WORK/slow.p4"

start_daemon() {
    "$WORK/p4served" -addr "$ADDR" -store-dir "$WORK/store" -workers 1 -cache-entries 0 &
    SERVED_PID=$!
    for _ in $(seq 100); do
        curl -sf "$BASE/v1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "FAIL: daemon did not become healthy" >&2
    exit 1
}

# submit FILE prints the new job's ID.
submit() {
    python3 - "$1" "$BASE" <<'EOF'
import json, sys, urllib.request
src = open(sys.argv[1]).read()
req = {"filename": sys.argv[1].rsplit("/", 1)[-1], "source": src}
r = urllib.request.Request(sys.argv[2] + "/v1/jobs",
                           json.dumps(req).encode(), {"Content-Type": "application/json"})
print(json.load(urllib.request.urlopen(r))["id"])
EOF
}

# sse_lines FILE prints one "seq<TAB>kind<TAB>name" line per complete
# SSE frame that carries an id, dropping a trailing partial frame (the
# capture is cut mid-write by the SIGKILL).
sse_lines() {
    python3 - "$1" <<'EOF'
import json, sys
raw = open(sys.argv[1], "rb").read().decode("utf-8", "replace")
frames = raw.split("\n\n")[:-1]  # last chunk is partial or empty
for f in frames:
    seq = kind = ""
    data = None
    for line in f.split("\n"):
        if line.startswith("id: "):
            seq = line[4:]
        elif line.startswith("event: "):
            kind = line[7:]
        elif line.startswith("data: "):
            data = line[6:]
    if not seq:
        continue  # unnumbered gap markers and comments
    name = ""
    if data:
        try:
            name = json.loads(data).get("name", "")
        except ValueError:
            continue  # truncated frame
    print("%s\t%s\t%s" % (seq, kind, name))
EOF
}

# assert_increasing FILE: sequence numbers must be strictly increasing.
assert_increasing() {
    python3 - "$1" <<'EOF'
import sys
prev = 0
for line in open(sys.argv[1]):
    seq = int(line.split("\t")[0])
    assert seq > prev, "seq %d after %d in %s" % (seq, prev, sys.argv[1])
    prev = seq
EOF
}

start_daemon

echo "== follow a job end-to-end through the CLI"
"$WORK/p4verify" -remote "$BASE" -follow -trace "$WORK/fabric.trace.json" \
    "$WORK/fabric.p4" >"$WORK/follow.out" 2>"$WORK/follow.err"
grep -q "p4verify: following" "$WORK/follow.err" || { echo "FAIL: no follow banner"; cat "$WORK/follow.err"; exit 1; }
grep -q "job done" "$WORK/follow.err" || { echo "FAIL: no terminal marker rendered"; cat "$WORK/follow.err"; exit 1; }
grep -q '"ph":"X"' "$WORK/fabric.trace.json" || { echo "FAIL: -follow -trace produced no Chrome trace"; exit 1; }
echo "   $(head -1 "$WORK/follow.out")"

echo "== stream a slow job and SIGKILL the daemon mid-flight"
SLOW=$(submit "$WORK/slow.p4")
curl -sN --max-time 120 "$BASE/v1/jobs/$SLOW/events" >"$WORK/pre.sse" &
CURL_PID=$!
for _ in $(seq 100); do
    grep -q "span_start" "$WORK/pre.sse" 2>/dev/null && break
    sleep 0.2
done
sleep 1   # let more events flow
kill -9 "$SERVED_PID"
wait "$SERVED_PID" 2>/dev/null || true
wait "$CURL_PID" 2>/dev/null || true
sse_lines "$WORK/pre.sse" >"$WORK/pre.lines"
assert_increasing "$WORK/pre.lines"
PRE_COUNT=$(wc -l <"$WORK/pre.lines")
[ "$PRE_COUNT" -ge 3 ] || { echo "FAIL: only $PRE_COUNT events captured before crash"; exit 1; }
grep -q "running" "$WORK/pre.lines" || { echo "FAIL: no running marker before crash"; exit 1; }

echo "== restart on the same store, replay the resumed feed from 0"
start_daemon
curl -sN --max-time 300 "$BASE/v1/jobs/$SLOW/events" >"$WORK/full.sse" || true
sse_lines "$WORK/full.sse" >"$WORK/full.lines"
assert_increasing "$WORK/full.lines"
grep -q "resumed" "$WORK/full.lines" || { echo "FAIL: no resumed marker in replayed feed"; exit 1; }
tail -1 "$WORK/full.lines" | grep -qE "job[[:space:]]+(done|failed)" || {
    echo "FAIL: replayed feed does not end with a terminal marker"; tail -3 "$WORK/full.lines"; exit 1; }

echo "== pre-crash capture must be a prefix of the resumed replay"
# A just-published tail can miss the WAL when the SIGKILL lands, so the
# comparison tolerates divergence inside that final in-flight window.
LCP=$(python3 - "$WORK/pre.lines" "$WORK/full.lines" <<'EOF'
import sys
a = open(sys.argv[1]).read().splitlines()
b = open(sys.argv[2]).read().splitlines()
n = 0
while n < min(len(a), len(b)) and a[n] == b[n]:
    n += 1
print(n)
EOF
)
[ "$LCP" -ge 3 ] || { echo "FAIL: common prefix only $LCP events"; exit 1; }
[ $((PRE_COUNT - LCP)) -le 16 ] || {
    echo "FAIL: pre-crash capture diverges from replay after $LCP of $PRE_COUNT events"
    diff <(head -$((LCP + 3)) "$WORK/pre.lines") <(head -$((LCP + 3)) "$WORK/full.lines") || true
    exit 1
}
echo "   prefix-consistent: $LCP/$PRE_COUNT pre-crash events replayed"

echo "== Last-Event-ID resumption must return exactly the remaining suffix"
RESUME_SEQ=$(sed -n "${LCP}p" "$WORK/pre.lines" | cut -f1)
curl -sN --max-time 60 -H "Last-Event-ID: $RESUME_SEQ" \
    "$BASE/v1/jobs/$SLOW/events" >"$WORK/resumed.sse" || true
sse_lines "$WORK/resumed.sse" >"$WORK/resumed.lines"
tail -n +$((LCP + 1)) "$WORK/full.lines" >"$WORK/want.lines"
cmp "$WORK/resumed.lines" "$WORK/want.lines" || {
    echo "FAIL: resumed suffix differs from replay after seq $RESUME_SEQ"
    diff "$WORK/resumed.lines" "$WORK/want.lines" | head -10
    exit 1
}

echo "== the interrupted job itself must have completed"
state=$(curl -sf "$BASE/v1/jobs/$SLOW" | grep -o '"state":"[a-z]*"' | cut -d'"' -f4)
[ "$state" = done ] || { echo "FAIL: job $SLOW ended $state"; exit 1; }
curl -sf "$BASE/v1/jobs/$SLOW/report" >/dev/null || { echo "FAIL: no report for $SLOW"; exit 1; }

echo "PASS: stream smoke"
