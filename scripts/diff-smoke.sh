#!/usr/bin/env bash
# Smoke test of the differential-verification CLI surface: every embedded
# corpus program must be reported equivalent to itself, a known-divergent
# version pair must produce a concrete (replay-confirmed) diverging
# packet, and a generated test-packet suite must replay cleanly against
# its program. Used by CI (diff-smoke job); runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/p4verify" ./cmd/p4verify
go build -o "$WORK/p4gen" ./cmd/p4gen

echo "== corpus self-equivalence via p4verify -diff"
for name in $("$WORK/p4gen" -list | awk '{print $1}'); do
    "$WORK/p4gen" -corpus "$name" -o "$WORK/$name.p4" -rules-out "$WORK/$name.rules"
    args=(-diff "$WORK/$name.p4" -timeout 2m -q)
    if [ -s "$WORK/$name.rules" ]; then
        args+=(-rules "$WORK/$name.rules" -rules-b "$WORK/$name.rules")
    fi
    "$WORK/p4verify" "${args[@]}" "$WORK/$name.p4" >"$WORK/$name.out" && st=0 || st=$?
    if [ "$st" -ne 0 ] || ! grep -q '^EQUIVALENT' "$WORK/$name.out"; then
        echo "FAIL: $name vs itself: exit $st"; cat "$WORK/$name.out"; exit 1
    fi
    echo "  $name: $(cat "$WORK/$name.out")"
done

echo "== known-divergent pair must produce a confirmed counterexample"
"$WORK/p4verify" -diff cmd/p4verify/testdata/diff_b.p4 \
    cmd/p4verify/testdata/diff_a.p4 >"$WORK/divergent.out" && st=0 || st=$?
[ "$st" -eq 1 ] || { echo "FAIL: divergent pair exit $st, want 1"; cat "$WORK/divergent.out"; exit 1; }
grep -q '^DIVERGENT' "$WORK/divergent.out" || { echo "FAIL: no DIVERGENT verdict"; cat "$WORK/divergent.out"; exit 1; }
grep -q 'replay: confirmed' "$WORK/divergent.out" || { echo "FAIL: counterexample not replay-confirmed"; cat "$WORK/divergent.out"; exit 1; }
grep -q 'packet:' "$WORK/divergent.out" || { echo "FAIL: no concrete packet in report"; cat "$WORK/divergent.out"; exit 1; }
echo "  $(head -1 "$WORK/divergent.out")"

echo "== generate and replay a test-packet suite (fabric)"
"$WORK/p4gen" -corpus fabric -o "$WORK/fabric.p4" -rules-out "$WORK/fabric.rules"
"$WORK/p4verify" -rules "$WORK/fabric.rules" -suite "$WORK/fabric-suite.json" "$WORK/fabric.p4"
test -s "$WORK/fabric-suite.json"
"$WORK/p4verify" -rules "$WORK/fabric.rules" -replay "$WORK/fabric-suite.json" "$WORK/fabric.p4" | tee "$WORK/replay.out"
grep -q '^PASS' "$WORK/replay.out" || { echo "FAIL: suite replay mismatched"; exit 1; }

echo "== diff smoke OK"
