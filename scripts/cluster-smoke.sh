#!/usr/bin/env bash
# End-to-end smoke test of the distributed verification cluster
# (docs/cluster.md): build p4served and p4verify, start two -worker
# nodes and a coordinator pointed at them, verify the fabric corpus
# program with submodel parallelism through the cluster, and assert
# that the submodels were actually dispatched remotely — the
# p4served_cluster_* metric families, the healthz node list, and the
# workers' own execution counters. Used by CI (cluster-smoke job);
# runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:9756
W0=127.0.0.1:9757
W1=127.0.0.1:9758
BASE=http://$ADDR
WORK=$(mktemp -d)
PIDS=()
trap 'kill "${PIDS[@]}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/p4served" ./cmd/p4served
go build -o "$WORK/p4verify" ./cmd/p4verify
go build -o "$WORK/p4gen" ./cmd/p4gen

echo "== materialize the fabric program"
"$WORK/p4gen" -corpus fabric -o "$WORK/fabric.p4"

wait_healthy() {
    for _ in $(seq 50); do
        curl -sf "$1/v1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "FAIL: $1 did not become healthy" >&2
    exit 1
}

echo "== start two workers and the coordinator"
"$WORK/p4served" -worker -addr "$W0" -node-name w0 &
PIDS+=($!)
"$WORK/p4served" -worker -addr "$W1" -node-name w1 &
PIDS+=($!)
wait_healthy "http://$W0"
wait_healthy "http://$W1"
"$WORK/p4served" -addr "$ADDR" -workers 2 \
    -cluster-node "w0=http://$W0" -cluster-node "w1=http://$W1" &
PIDS+=($!)
wait_healthy "$BASE"

echo "== healthz lists both nodes alive"
curl -sf "$BASE/v1/healthz" >"$WORK/healthz.json"
for node in w0 w1; do
    grep -q "\"name\":\"$node\"" "$WORK/healthz.json" || {
        echo "FAIL: node $node missing from healthz cluster list"; exit 1; }
done
alive=$(grep -o '"alive":true' "$WORK/healthz.json" | wc -l)
[ "$alive" -eq 2 ] || { echo "FAIL: $alive/2 nodes alive in healthz"; exit 1; }

echo "== verify fabric through the cluster (parallel submodels)"
"$WORK/p4verify" -remote "$BASE" -parallel 4 "$WORK/fabric.p4" >"$WORK/verdict.txt" && exit_ok=0 || exit_ok=$?
[ "$exit_ok" -le 1 ] || { echo "FAIL: p4verify exit $exit_ok (front-end/transport error)"; cat "$WORK/verdict.txt"; exit 1; }

echo "== coordinator metrics: submodels dispatched to workers"
curl -sf "$BASE/v1/metrics" >"$WORK/metrics.txt"
for fam in p4served_cluster_nodes p4served_cluster_nodes_alive \
           p4served_cluster_dispatch_total p4served_cluster_rpc_seconds; do
    grep -q "^# TYPE $fam " "$WORK/metrics.txt" || {
        echo "FAIL: metric family $fam missing from /v1/metrics"; exit 1; }
done
grep -q 'p4served_cluster_nodes_alive 2' "$WORK/metrics.txt" || {
    echo "FAIL: p4served_cluster_nodes_alive != 2"; exit 1; }
dispatched=$(grep -o 'p4served_cluster_dispatch_total{[^}]*} [0-9]*' "$WORK/metrics.txt" \
    | awk '{s+=$NF} END {print s+0}')
[ "$dispatched" -gt 0 ] || { echo "FAIL: no successful remote dispatches recorded"; exit 1; }
echo "   dispatched=$dispatched submodels remotely"

echo "== /v1/cluster reflects the per-node dispatch counters"
curl -sf "$BASE/v1/cluster" >"$WORK/cluster.json"
grep -q '"draining":false' "$WORK/cluster.json" || { echo "FAIL: coordinator draining"; exit 1; }
node_dispatched=$(grep -o '"dispatched":[0-9]*' "$WORK/cluster.json" \
    | cut -d: -f2 | awk '{s+=$1} END {print s+0}')
[ "$node_dispatched" -gt 0 ] || { echo "FAIL: /v1/cluster shows zero dispatches"; exit 1; }

echo "== workers executed submodels themselves"
executed=0
for w in "http://$W0" "http://$W1"; do
    n=$(curl -sf "$w/v1/healthz" | grep -o '"executed":[0-9]*' | cut -d: -f2)
    executed=$((executed + n))
done
[ "$executed" -gt 0 ] || { echo "FAIL: workers executed no submodels"; exit 1; }
echo "   workers executed $executed submodels"

echo "PASS: cluster smoke"
