#!/usr/bin/env bash
# Crash-safety smoke test of the durable service core: start p4served
# with a WAL-backed job store, run corpus jobs plus an in-flight slow
# one, SIGKILL the daemon mid-work, restart it on the same store, and
# assert (a) finished reports come back byte-identical, (b) the
# interrupted jobs are resubmitted and complete under their original
# IDs, (c) an armed failpoint on the WAL write path degrades the store
# without failing jobs. Used by CI (crash-smoke job); runnable locally.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:9747
BASE=http://$ADDR
WORK=$(mktemp -d)
SERVED_PID=
trap 'kill -9 "$SERVED_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/p4served" ./cmd/p4served
go build -o "$WORK/p4gen" ./cmd/p4gen

echo "== materialize example programs"
"$WORK/p4gen" -corpus dapper -o "$WORK/dapper.p4"
"$WORK/p4gen" -corpus fabric -o "$WORK/fabric.p4"

# slow.p4: 16 sequential branches ~= 65k paths, so the job is still
# running seconds later when the SIGKILL lands.
{
    printf 'header h_t {'
    for i in $(seq 0 15); do printf ' bit<8> f%d;' "$i"; done
    printf ' }\nstruct headers_t { h_t h; }\nstruct metadata_t { bit<8> m; }\n'
    cat <<'EOF'
parser P(packet_in pkt, out headers_t hdr, inout metadata_t meta,
         inout standard_metadata_t standard_metadata) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control I(inout headers_t hdr, inout metadata_t meta,
          inout standard_metadata_t standard_metadata) {
    apply {
EOF
    for i in $(seq 0 15); do
        printf '        if (hdr.h.f%d > 7) { meta.m = meta.m + 1; }\n' "$i"
    done
    cat <<'EOF'
        @assert("meta.m != 255");
    }
}
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.h); } }
V1Switch(P, I, D) main;
EOF
} > "$WORK/slow.p4"

start_daemon() {
    "$WORK/p4served" -addr "$ADDR" -store-dir "$WORK/store" -workers 1 -cache-entries 0 &
    SERVED_PID=$!
    for _ in $(seq 100); do
        curl -sf "$BASE/v1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "FAIL: daemon did not become healthy" >&2
    exit 1
}

# submit FILE [PRIORITY] prints the new job's ID.
submit() {
    python3 - "$1" "${2:-}" <<'EOF'
import json, sys, urllib.request
src = open(sys.argv[1]).read()
req = {"filename": sys.argv[1].rsplit("/", 1)[-1], "source": src}
if sys.argv[2]:
    req["priority"] = sys.argv[2]
r = urllib.request.Request("BASE/v1/jobs".replace("BASE", "http://127.0.0.1:9747"),
                           json.dumps(req).encode(), {"Content-Type": "application/json"})
print(json.load(urllib.request.urlopen(r))["id"])
EOF
}

# wait_done ID polls until the job is done (or fails the script).
wait_done() {
    for _ in $(seq 300); do
        state=$(curl -sf "$BASE/v1/jobs/$1" | grep -o '"state":"[a-z]*"' | cut -d'"' -f4)
        case "$state" in
            done) return 0 ;;
            failed|cancelled) echo "FAIL: job $1 ended $state" >&2; exit 1 ;;
        esac
        sleep 0.2
    done
    echo "FAIL: job $1 never finished" >&2
    exit 1
}

start_daemon
echo "== run jobs to completion, keep their report bytes"
DAPPER=$(submit "$WORK/dapper.p4")
FABRIC=$(submit "$WORK/fabric.p4")
wait_done "$DAPPER"
wait_done "$FABRIC"
curl -sf "$BASE/v1/jobs/$DAPPER/report" >"$WORK/dapper.report"
curl -sf "$BASE/v1/jobs/$FABRIC/report" >"$WORK/fabric.report"

echo "== queue work and SIGKILL the daemon mid-flight"
SLOW=$(submit "$WORK/slow.p4")            # occupies the single worker
QUEUED=$(submit "$WORK/dapper.p4" bulk)   # pending behind it
kill -9 "$SERVED_PID"
wait "$SERVED_PID" 2>/dev/null || true

echo "== restart on the same store"
start_daemon

echo "== finished reports must be byte-identical across the crash"
curl -sf "$BASE/v1/jobs/$DAPPER/report" >"$WORK/dapper.report2"
curl -sf "$BASE/v1/jobs/$FABRIC/report" >"$WORK/fabric.report2"
cmp "$WORK/dapper.report" "$WORK/dapper.report2" || { echo "FAIL: dapper report changed across crash"; exit 1; }
cmp "$WORK/fabric.report" "$WORK/fabric.report2" || { echo "FAIL: fabric report changed across crash"; exit 1; }

echo "== interrupted jobs must be resubmitted and complete"
wait_done "$SLOW"
wait_done "$QUEUED"
recovered=$(curl -sf "$BASE/v1/stats" | grep -o '"recovered":[0-9]*' | cut -d: -f2)
[ "${recovered:-0}" -ge 2 ] || { echo "FAIL: recovered=$recovered, want >=2"; exit 1; }
echo "   recovered=$recovered"

echo "== degraded mode: a WAL fsync failure must not fail jobs"
kill -9 "$SERVED_PID"
wait "$SERVED_PID" 2>/dev/null || true
P4ASSERT_FAILPOINTS='store/wal/fsync=times(1):error' start_daemon
DEGRADED=$(submit "$WORK/dapper.p4")
wait_done "$DEGRADED"
curl -sf "$BASE/v1/healthz" | grep -q '"degraded":true' || {
    echo "FAIL: degraded store not surfaced in healthz"; exit 1; }

echo "PASS: crash smoke"
