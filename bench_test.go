// Benchmarks regenerating the paper's evaluation, one testing.B target per
// figure panel and table. Parameters are reduced relative to the paper's
// plots so the suite completes quickly; cmd/p4bench runs the full ranges
// (see EXPERIMENTS.md for measured series).
package p4assert_test

import (
	"testing"

	"p4assert/internal/bench"
	"p4assert/internal/core"
	"p4assert/internal/progs"
	"p4assert/internal/rules"
)

func runSweep(b *testing.B, s bench.Sweep, x int, v bench.Variant) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		p, err := bench.RunSweepPoint(s, x, v)
		if err != nil {
			b.Fatal(err)
		}
		if p.Paths == 0 {
			b.Fatal("no paths explored")
		}
		b.ReportMetric(float64(p.Instructions), "instructions")
		b.ReportMetric(float64(p.Paths), "paths")
	}
}

// ---------------------------------------------------------------- Fig. 9 --

func BenchmarkFig9a_Tables(b *testing.B) {
	for _, x := range []int{8, 10, 12} {
		b.Run(benchName("tables", x), func(b *testing.B) {
			runSweep(b, bench.SweepTables, x, bench.Original)
		})
	}
}

func BenchmarkFig9b_Assertions(b *testing.B) {
	for _, x := range []int{8, 16, 24} {
		b.Run(benchName("assertions", x), func(b *testing.B) {
			runSweep(b, bench.SweepAssertions, x, bench.Original)
		})
	}
}

func BenchmarkFig9c_Rules(b *testing.B) {
	for _, x := range []int{16, 32, 64} {
		b.Run(benchName("rules", x), func(b *testing.B) {
			runSweep(b, bench.SweepRules, x, bench.Original)
		})
	}
}

func BenchmarkFig9d_Actions(b *testing.B) {
	for _, x := range []int{30, 60, 90} {
		b.Run(benchName("actions", x), func(b *testing.B) {
			runSweep(b, bench.SweepActions, x, bench.Original)
		})
	}
}

// --------------------------------------------------------------- Fig. 10 --

func benchVariants(b *testing.B, s bench.Sweep, x int) {
	b.Helper()
	for _, v := range []bench.Variant{bench.Original, bench.Parallel, bench.O3, bench.Opt} {
		b.Run(string(v), func(b *testing.B) { runSweep(b, s, x, v) })
	}
}

func BenchmarkFig10a_Tables(b *testing.B)     { benchVariants(b, bench.SweepTables, 10) }
func BenchmarkFig10b_Assertions(b *testing.B) { benchVariants(b, bench.SweepAssertions, 16) }
func BenchmarkFig10c_Rules(b *testing.B)      { benchVariants(b, bench.SweepRules, 32) }
func BenchmarkFig10d_Actions(b *testing.B)    { benchVariants(b, bench.SweepActions, 60) }

// --------------------------------------------------------------- Table 2 --

func benchProgram(b *testing.B, name string, v bench.Variant) {
	b.Helper()
	p, err := progs.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{}
	switch v {
	case bench.O3:
		opts.O3 = true
	case bench.Opt:
		opts.Opt = true
	case bench.Parallel:
		opts.Parallel = 4
	case bench.Slice:
		opts.Slice = true
	}
	source := p.Source
	if v == bench.Constraints {
		source = p.ConstrainedSource()
	}
	if p.Rules != "" {
		rs, err := rules.Parse(p.Rules)
		if err != nil {
			b.Fatal(err)
		}
		opts.Rules = rs
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.VerifySource(name+".p4", source, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Metrics.Instructions), "instructions")
	}
}

func BenchmarkTable2(b *testing.B) {
	for _, p := range progs.Table2Programs() {
		b.Run(p.Name, func(b *testing.B) {
			b.Run("Original", func(b *testing.B) { benchProgram(b, p.Name, bench.Original) })
			for _, v := range bench.Table2Variants {
				if v == bench.Slice && p.Name == "mri" {
					continue // slicing fails on MRI's recursive parser
				}
				b.Run(string(v), func(b *testing.B) { benchProgram(b, p.Name, v) })
			}
		})
	}
}

// §5.5 combined techniques on Dapper.
func BenchmarkCombined_Dapper(b *testing.B) {
	p, err := progs.Get("dapper")
	if err != nil {
		b.Fatal(err)
	}
	src := p.ConstrainedSource()
	for i := 0; i < b.N; i++ {
		rep, err := core.VerifySource("dapper.p4", src,
			core.Options{O3: true, Opt: true, Parallel: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Metrics.Instructions), "instructions")
	}
}

// §5.1 bug finding across the corpus.
func BenchmarkBugFinding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.BugFinding()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.AllFound {
				b.Fatalf("%s: expected bugs not found", r.Program)
			}
		}
	}
}

// Table 1 expressiveness matrix.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(label string, x int) string {
	return label + "=" + itoa(x)
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}
