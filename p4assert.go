// Package p4assert verifies P4_16 programs annotated with assertions, as
// described in "Verification of P4 Programs in Feasible Time using
// Assertions" (Neves, Freire, Schaeffer-Filho, Barcellos — CoNEXT 2018).
//
// Programs carry @assert("...") annotations written in the paper's
// assertion language (forward(), traverse_path(), constant(f),
// if(b1,b2,[b3]), extract_header(h), emit_header(h)) and optional
// @assume(...) constraints. Verify translates the program into a
// verification model — optionally restricted by a forwarding-rule
// configuration — and symbolically executes every path, reporting each
// violated assertion with a concrete counterexample packet.
//
// The four speed-up techniques of the paper are available through Options:
// assumption constraints (in the source), compiler optimization passes
// (O3), executor optimizations (Opt), program slicing (Slice), and
// submodel parallelization (Parallel).
//
// Quick start:
//
//	rep, err := p4assert.Verify("prog.p4", source, nil)
//	if err != nil { ... }
//	for _, v := range rep.Violations {
//	    fmt.Println(v.Assertion, "violated:", v.Counterexample)
//	}
package p4assert

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"p4assert/internal/core"
	"p4assert/internal/rules"
	"p4assert/internal/sym"
)

// Options configures verification. The zero value (or nil) verifies all
// paths with no optimizations, mirroring the paper's "Original" setup.
type Options struct {
	// Rules restricts verification to a control-plane configuration.
	Rules *RuleSet
	// O3 enables the IR optimization passes (the paper's LLVM -O3 role).
	O3 bool
	// Opt enables executor-level optimizations (KLEE --optimize role).
	Opt bool
	// Slice applies backward program slicing w.r.t. the assertions
	// (the paper's Frama-C role). If slicing fails (recursive parser),
	// verification proceeds unsliced and Report.SliceFailed is set.
	Slice bool
	// Parallel, when > 0, splits the model into submodels executed on that
	// many workers (the paper's §4.4 strategy; their setup used 4).
	Parallel int
	// MaxParserLoops bounds recursive parser unrolling (default 8).
	MaxParserLoops int
	// MaxPaths aborts after exploring this many paths (0 = unlimited).
	MaxPaths int64
	// Timeout aborts exploration after this duration (0 = none).
	Timeout time.Duration
	// AutoValidityChecks instruments every header-field access with an
	// automatic validity assertion (reading or writing a field of an
	// invalid header is then reported even without manual annotations) —
	// the automatic-instrumentation extension the paper proposes as
	// future work.
	AutoValidityChecks bool
}

// RuleSet is a forwarding-rule configuration (table entries).
type RuleSet struct {
	rs *rules.RuleSet
}

// ParseRules reads the rule text format:
//
//	# table        action      match            args
//	ipv4_lpm       set_nhop    0x0a000000/8  => 3 0x112233445566
//	acl            deny        0x0adead01
//	port_mapping   set_index   *             => 7
//
// Matches are exact values, value/prefixLen (LPM), value&mask (ternary) or
// "*" (wildcard). Table names may be control-qualified ("Ingress.acl").
func ParseRules(text string) (*RuleSet, error) {
	rs, err := rules.Parse(text)
	if err != nil {
		return nil, err
	}
	return &RuleSet{rs: rs}, nil
}

// NumRules returns the number of entries in the set.
func (r *RuleSet) NumRules() int {
	if r == nil || r.rs == nil {
		return 0
	}
	return r.rs.NumRules()
}

// Violation reports one failed assertion.
type Violation struct {
	// Assertion is the annotation's source text.
	Assertion string
	// Location is the file:line:col and block of the annotation.
	Location string
	// Paths is how many execution paths violated it.
	Paths int64
	// Counterexample assigns concrete values to the symbolic inputs
	// (packet fields, ports) of one violating execution.
	Counterexample map[string]uint64
	// Trace lists the table/action decisions of that execution.
	Trace []string
}

// String renders the violation compactly.
func (v *Violation) String() string {
	return fmt.Sprintf("assertion %q at %s violated on %d path(s); counterexample: %s",
		v.Assertion, v.Location, v.Paths, FormatCounterexample(v.Counterexample))
}

// FormatCounterexample renders an input assignment deterministically.
func FormatCounterexample(m map[string]uint64) string {
	return sym.FormatModel(m)
}

// Stats summarizes verification effort, the paper's two metrics first.
type Stats struct {
	// Time is the wall-clock verification time (paper metric i).
	Time time.Duration
	// Instructions is the number of model statements the symbolic engine
	// executed (paper metric ii).
	Instructions int64
	// Paths is the number of completed execution paths.
	Paths int64
	// InfeasiblePaths counts paths pruned by the solver.
	InfeasiblePaths int64
	// SolverQueries counts satisfiability checks (QuickSolved of them
	// answered without the SAT backend).
	SolverQueries int64
	QuickSolved   int64
	// Submodels is the number of parallel submodels (0 when sequential).
	Submodels int
	// WorstSubmodelInstructions is the heaviest submodel's instruction
	// count (Table 2's parallel-reduction metric).
	WorstSubmodelInstructions int64
}

// Report is the verification outcome.
type Report struct {
	// Violations lists failed assertions; empty means the program is
	// correct with respect to the analyzed properties.
	Violations []*Violation
	// AssertionCount is how many @assert annotations were checked.
	AssertionCount int
	// Stats summarizes effort.
	Stats Stats
	// SliceFailed is set when Options.Slice was requested but the program
	// could not be sliced (e.g. a recursive parser, as the paper reports
	// for MRI); verification then ran unsliced.
	SliceFailed error
	// Exhausted reports that MaxPaths or Timeout stopped exploration
	// before covering every path; absence of violations is then not a
	// proof.
	Exhausted bool
}

// Ok reports whether every assertion was proven to hold.
func (r *Report) Ok() bool { return len(r.Violations) == 0 && !r.Exhausted }

// Verify checks the P4 source text. filename is used in messages only.
// A nil opts verifies with defaults.
func Verify(filename, source string, opts *Options) (*Report, error) {
	return VerifyCtx(context.Background(), filename, source, opts)
}

// VerifyCtx is Verify with a context: cancellation (or a deadline) stops
// the symbolic-execution loop early, and a telemetry.Trace carried in ctx
// (telemetry.WithTrace) records the span tree of the pipeline stages —
// p4verify's -trace flag uses this to export a Chrome trace.
func VerifyCtx(ctx context.Context, filename, source string, opts *Options) (*Report, error) {
	if opts == nil {
		opts = &Options{}
	}
	co := core.Options{
		O3:                 opts.O3,
		Opt:                opts.Opt,
		Slice:              opts.Slice,
		Parallel:           opts.Parallel,
		MaxCallDepth:       opts.MaxParserLoops,
		MaxPaths:           opts.MaxPaths,
		Timeout:            opts.Timeout,
		AutoValidityChecks: opts.AutoValidityChecks,
	}
	if opts.Rules != nil {
		co.Rules = opts.Rules.rs
	}
	t0 := time.Now()
	rep, err := core.VerifySourceCtx(ctx, filename, source, co)
	if err != nil {
		return nil, err
	}
	return convert(rep, time.Since(t0)), nil
}

// VerifyFile checks a P4 program on disk.
func VerifyFile(path string, opts *Options) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("p4assert: %w", err)
	}
	return Verify(path, string(data), opts)
}

func convert(rep *core.Report, elapsed time.Duration) *Report {
	out := &Report{
		AssertionCount: len(rep.Asserts),
		SliceFailed:    rep.SliceErr,
		Exhausted:      rep.Exhausted,
		Stats: Stats{
			Time:                      elapsed,
			Instructions:              rep.Metrics.Instructions,
			Paths:                     rep.Metrics.Paths,
			InfeasiblePaths:           rep.Metrics.KilledInfeasible,
			SolverQueries:             rep.Metrics.Solver.Queries,
			QuickSolved:               rep.Metrics.Solver.QuickSAT + rep.Metrics.Solver.QuickUNSAT,
			Submodels:                 rep.Submodels,
			WorstSubmodelInstructions: rep.WorstSubmodelInstructions,
		},
	}
	for _, v := range rep.Violations {
		nv := &Violation{
			Paths:          v.Count,
			Counterexample: v.Model,
			Trace:          v.Trace,
		}
		if v.Info != nil {
			nv.Assertion = v.Info.Source
			nv.Location = v.Info.Location
		}
		out.Violations = append(out.Violations, nv)
	}
	sort.Slice(out.Violations, func(i, j int) bool {
		return out.Violations[i].Location < out.Violations[j].Location
	})
	return out
}
